package passes

import (
	"strings"
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
)

// buildAccumulator reproduces the paper's Listing 1: a two-iteration
// accumulation loop where `sum` is conditionally updated. Returns the
// circuit and the source line of the accumulation statement.
func buildAccumulator(t *testing.T) (*ir.Circuit, int) {
	t.Helper()
	c := generator.NewCircuit("Acc")
	m := c.NewModule("Acc")
	data := []*generator.Signal{
		m.Input("data_0", ir.UIntType(8)),
		m.Input("data_1", ir.UIntType(8)),
	}
	out := m.Output("out", ir.UIntType(8))
	sum := m.Wire("sum", ir.UIntType(8))
	sum.Set(m.Lit(0, 8))
	var accLine int
	for i := 0; i < 2; i++ {
		m.When(data[i].Bit(0), func() {
			sum.Set(sum.AddMod(data[i])) // Listing 1 line 4
			accLine = curLine() - 1
		})
	}
	out.Set(sum)
	return c.MustBuild(), accLine
}

func curLine() int {
	// helper so tests can capture their own line numbers
	var pcs [1]uintptr
	n := runtimeCallers(2, pcs[:])
	if n == 0 {
		return 0
	}
	return pcLine(pcs[0])
}

func TestLowerAggregatesBundle(t *testing.T) {
	c := generator.NewCircuit("B")
	m := c.NewModule("B")
	bundleT := ir.Bundle{Fields: []ir.Field{
		{Name: "bits", Type: ir.UIntType(8)},
		{Name: "valid", Type: ir.UIntType(1)},
		{Name: "ready", Flip: true, Type: ir.UIntType(1)},
	}}
	io := m.Output("io", bundleT)
	busy := m.Output("busy", ir.UIntType(1))
	io.Field("bits").Set(m.Lit(5, 8))
	io.Field("valid").Set(m.Lit(1, 1))
	busy.Set(io.Field("ready").Not())
	circ := c.MustBuild()

	comp := NewCompilation(circ, false)
	if err := (&LowerAggregates{}).Run(comp); err != nil {
		t.Fatalf("lower: %v", err)
	}
	mod := comp.Circuit.MainModule()
	byName := map[string]ir.Port{}
	for _, p := range mod.Ports {
		byName[p.Name] = p
	}
	if p, ok := byName["io_bits"]; !ok || p.Dir != ir.Output || p.Tpe.BitWidth() != 8 {
		t.Fatalf("io_bits port: %+v ok=%v", p, ok)
	}
	// Flipped field becomes an input.
	if p, ok := byName["io_ready"]; !ok || p.Dir != ir.Input {
		t.Fatalf("io_ready port: %+v ok=%v", p, ok)
	}
	if comp.FlatVar["B"]["io_bits"] != "io.bits" {
		t.Fatalf("FlatVar = %v", comp.FlatVar["B"])
	}
}

func TestLowerAggregatesVecDynamicRead(t *testing.T) {
	c := generator.NewCircuit("V")
	m := c.NewModule("V")
	v := m.Wire("v", ir.Vec{Elem: ir.UIntType(8), Len: 4})
	idx := m.Input("idx", ir.UIntType(2))
	out := m.Output("out", ir.UIntType(8))
	for i := 0; i < 4; i++ {
		v.Idx(i).Set(m.Lit(uint64(i*10), 8))
	}
	out.Set(v.IdxDyn(idx))
	circ := c.MustBuild()

	comp := NewCompilation(circ, false)
	if err := (&LowerAggregates{}).Run(comp); err != nil {
		t.Fatalf("lower: %v", err)
	}
	s := ir.CircuitString(comp.Circuit)
	// The dynamic read becomes a mux tree over v_0..v_3.
	for _, want := range []string{"v_0", "v_3", "mux(eq(idx,"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in lowered:\n%s", want, s)
		}
	}
}

func TestLowerAggregatesVecDynamicWrite(t *testing.T) {
	c := generator.NewCircuit("VW")
	m := c.NewModule("VW")
	v := m.Wire("v", ir.Vec{Elem: ir.UIntType(8), Len: 2})
	idx := m.Input("idx", ir.UIntType(1))
	din := m.Input("din", ir.UIntType(8))
	out := m.Output("out", ir.UIntType(8))
	v.Idx(0).Set(m.Lit(0, 8))
	v.Idx(1).Set(m.Lit(0, 8))
	v.IdxDyn(idx).Set(din)
	out.Set(v.Idx(0))
	circ := c.MustBuild()

	comp := NewCompilation(circ, false)
	if err := (&LowerAggregates{}).Run(comp); err != nil {
		t.Fatalf("lower: %v", err)
	}
	// Dynamic write becomes per-element conditional writes.
	whens := 0
	ir.WalkStmts(comp.Circuit.MainModule().Body, func(s ir.Stmt) {
		if _, ok := s.(*ir.When); ok {
			whens++
		}
	})
	if whens != 2 {
		t.Fatalf("whens = %d, want 2 (one per element)", whens)
	}
}

func TestAnnotateEnableConditions(t *testing.T) {
	circ, _ := buildAccumulator(t)
	comp := NewCompilation(circ, false)
	if err := (&LowerAggregates{}).Run(comp); err != nil {
		t.Fatal(err)
	}
	if err := (&Annotate{}).Run(comp); err != nil {
		t.Fatal(err)
	}
	// Find the annotations for connects inside whens: they must carry
	// the bit-test enable condition (the paper's "data[0] % 2").
	var conditional []string
	for s, ann := range comp.Annotations {
		if _, ok := s.(*ir.Connect); ok && ann.Enable != nil {
			conditional = append(conditional, ann.EnableSrc)
		}
	}
	if len(conditional) != 2 {
		t.Fatalf("conditional connects = %d, want 2 (unrolled loop)", len(conditional))
	}
	for _, src := range conditional {
		if !strings.Contains(src, "data_") || !strings.Contains(src, "[0:0]") {
			t.Fatalf("enable source %q does not reference the bit test", src)
		}
	}
}

// TestSSAListing2 is the golden reproduction of the paper's Listing 2:
// loop unrolling + SSA yields sum_0, sum_1, sum_2 temporaries, a
// trailing alias node for `sum`, and per-statement enable conditions.
func TestSSAListing2(t *testing.T) {
	circ, accLine := buildAccumulator(t)
	comp := NewCompilation(circ, false)
	for _, p := range []Pass{&LowerAggregates{}, &Annotate{}, &SSA{}} {
		if err := p.Run(comp); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
	mod := comp.Circuit.MainModule()
	nodes := map[string]ir.Expr{}
	for _, s := range mod.Body {
		if n, ok := s.(*ir.DefNode); ok {
			nodes[n.Name] = n.Value
		}
	}
	// Listing 2's temporaries.
	for _, want := range []string{"sum_0", "sum_1", "sum_2", "sum"} {
		if _, ok := nodes[want]; !ok {
			t.Fatalf("missing SSA temp %q; have %v", want, keys(nodes))
		}
	}
	// sum_0 is the initial constant.
	if c, ok := nodes["sum_0"].(ir.Const); !ok || c.Value != 0 {
		t.Fatalf("sum_0 = %v, want const 0", nodes["sum_0"])
	}
	// The final alias resolves the merge chain (last value may come
	// through a _GEN mux because assignments are conditional).
	if !strings.Contains(nodes["sum"].String(), "_GEN") && !strings.Contains(nodes["sum"].String(), "sum_2") {
		t.Fatalf("sum alias = %v", nodes["sum"])
	}

	// The paper: a user breakpoint at the accumulation line expands to
	// TWO emulated breakpoints (one per unrolled iteration), each with
	// its own enable condition and its own binding for `sum`.
	var hits []*SymbolEntry
	for _, e := range comp.Symbols {
		if e.Line == accLine {
			hits = append(hits, e)
		}
	}
	if len(hits) != 2 {
		t.Fatalf("breakpoints at line %d = %d, want 2; symbols: %+v", accLine, len(hits), comp.Symbols)
	}
	// gdb stop-before semantics: at the first hit sum reads sum_0, at
	// the second sum reads the merge of iteration 0.
	if hits[0].Vars["sum"] != "sum_0" {
		t.Fatalf("first hit binds sum=%s, want sum_0", hits[0].Vars["sum"])
	}
	if hits[0].Enable == nil || hits[1].Enable == nil {
		t.Fatal("conditional breakpoints missing enable conditions")
	}
	if exprEqual(hits[0].Enable, hits[1].Enable) {
		t.Fatalf("both hits share enable %s", hits[0].Enable)
	}
	// Scheduler ordering is lexical.
	if hits[0].Order >= hits[1].Order {
		t.Fatalf("orders not increasing: %d, %d", hits[0].Order, hits[1].Order)
	}
}

func TestSSARegisterHoldAndReset(t *testing.T) {
	c := generator.NewCircuit("R")
	m := c.NewModule("R")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	r := m.RegInit("r", ir.UIntType(8), m.Lit(7, 8))
	m.When(en, func() {
		r.Set(r.AddMod(m.Lit(1, 8)))
	})
	out.Set(r)
	circ := c.MustBuild()
	comp := NewCompilation(circ, false)
	for _, p := range []Pass{&LowerAggregates{}, &Annotate{}, &SSA{}} {
		if err := p.Run(comp); err != nil {
			t.Fatal(err)
		}
	}
	// The register's next-value connect must include both the hold path
	// (register itself) and the reset mux.
	var regNext ir.Expr
	for _, s := range comp.Circuit.MainModule().Body {
		if cn, ok := s.(*ir.Connect); ok {
			if ref, isRef := cn.Loc.(ir.Ref); isRef && ref.Name == "r" {
				regNext = cn.Value
			}
		}
	}
	if regNext == nil {
		t.Fatal("no register next connect")
	}
	str := regNext.String()
	if !strings.Contains(str, "reset") {
		t.Fatalf("reg next %s missing reset mux", str)
	}
}

func TestSSAUninitializedWireError(t *testing.T) {
	c := generator.NewCircuit("U")
	m := c.NewModule("U")
	w := m.Wire("w", ir.UIntType(4))
	out := m.Output("out", ir.UIntType(4))
	out.Set(w) // read before any assignment
	circ := c.MustBuild()
	comp := NewCompilation(circ, false)
	if err := (&LowerAggregates{}).Run(comp); err != nil {
		t.Fatal(err)
	}
	if err := (&SSA{}).Run(comp); err == nil {
		t.Fatal("read of unassigned wire accepted")
	}
}

func TestSSAConditionalOnlyAssignmentError(t *testing.T) {
	c := generator.NewCircuit("CO")
	m := c.NewModule("CO")
	en := m.Input("en", ir.UIntType(1))
	w := m.Wire("w", ir.UIntType(4))
	out := m.Output("out", ir.UIntType(4))
	m.When(en, func() {
		w.Set(m.Lit(1, 4))
	})
	out.Set(w)
	circ := c.MustBuild()
	comp := NewCompilation(circ, false)
	if err := (&LowerAggregates{}).Run(comp); err != nil {
		t.Fatal(err)
	}
	if err := (&SSA{}).Run(comp); err == nil {
		t.Fatal("conditionally-assigned wire without default accepted")
	}
}

func TestSSAUnassignedOutputError(t *testing.T) {
	circ := &ir.Circuit{Main: "O", Modules: []*ir.Module{{
		Name: "O",
		Ports: []ir.Port{
			{Name: "clock", Dir: ir.Input, Tpe: ir.ClockType()},
			{Name: "reset", Dir: ir.Input, Tpe: ir.ResetType()},
			{Name: "out", Dir: ir.Output, Tpe: ir.UIntType(1)},
		},
	}}}
	comp := NewCompilation(circ, false)
	if err := (&SSA{}).Run(comp); err == nil {
		t.Fatal("unassigned output accepted")
	}
}

func TestConstProp(t *testing.T) {
	circ := &ir.Circuit{Main: "CP", Modules: []*ir.Module{{
		Name: "CP",
		Ports: []ir.Port{
			{Name: "clock", Dir: ir.Input, Tpe: ir.ClockType()},
			{Name: "reset", Dir: ir.Input, Tpe: ir.ResetType()},
			{Name: "x", Dir: ir.Input, Tpe: ir.UIntType(8)},
			{Name: "out", Dir: ir.Output, Tpe: ir.UIntType(9)},
		},
		Body: []ir.Stmt{
			&ir.DefNode{Name: "a", Value: ir.ConstUInt(3, 8)},
			&ir.DefNode{Name: "b", Value: ir.NewPrim(ir.OpAdd, ir.Ref{Name: "a"}, ir.ConstUInt(4, 8))},
			&ir.DefNode{Name: "c", Value: ir.Ref{Name: "x"}}, // alias
			&ir.DefNode{Name: "d", Value: ir.NewPrim(ir.OpAdd, ir.Ref{Name: "c"}, ir.Ref{Name: "b"})},
			&ir.Connect{Loc: ir.Ref{Name: "out"}, Value: ir.Ref{Name: "d"}},
		},
	}}}
	comp := NewCompilation(circ, false)
	if err := (&ConstProp{}).Run(comp); err != nil {
		t.Fatal(err)
	}
	nodes := map[string]ir.Expr{}
	for _, s := range circ.MainModule().Body {
		if n, ok := s.(*ir.DefNode); ok {
			nodes[n.Name] = n.Value
		}
	}
	// b = 3 + 4 folds to constant 7.
	if c, ok := nodes["b"].(ir.Const); !ok || c.Value != 7 {
		t.Fatalf("b = %v, want const 7", nodes["b"])
	}
	// d's use of alias c becomes x, and use of b becomes the constant.
	dStr := nodes["d"].String()
	if !strings.Contains(dStr, "x") || !strings.Contains(dStr, "(7)") {
		t.Fatalf("d = %s", dStr)
	}
	// Alias rename recorded.
	if comp.resolveRename("CP", "c") != "x" {
		t.Fatalf("rename c -> %s, want x", comp.resolveRename("CP", "c"))
	}
}

func TestCSE(t *testing.T) {
	dup := ir.NewPrim(ir.OpAdd, ir.Ref{Name: "x"}, ir.Ref{Name: "y"})
	circ := &ir.Circuit{Main: "C", Modules: []*ir.Module{{
		Name: "C",
		Ports: []ir.Port{
			{Name: "clock", Dir: ir.Input, Tpe: ir.ClockType()},
			{Name: "reset", Dir: ir.Input, Tpe: ir.ResetType()},
			{Name: "x", Dir: ir.Input, Tpe: ir.UIntType(8)},
			{Name: "y", Dir: ir.Input, Tpe: ir.UIntType(8)},
			{Name: "out", Dir: ir.Output, Tpe: ir.UIntType(10)},
		},
		Body: []ir.Stmt{
			&ir.DefNode{Name: "a", Value: dup},
			&ir.DefNode{Name: "b", Value: ir.NewPrim(ir.OpAdd, ir.Ref{Name: "x"}, ir.Ref{Name: "y"})},
			&ir.DefNode{Name: "s", Value: ir.NewPrim(ir.OpAdd, ir.Ref{Name: "a"}, ir.Ref{Name: "b"})},
			&ir.Connect{Loc: ir.Ref{Name: "out"}, Value: ir.Ref{Name: "s"}},
		},
	}}}
	comp := NewCompilation(circ, false)
	if err := (&CSE{}).Run(comp); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, s := range circ.MainModule().Body {
		if n, ok := s.(*ir.DefNode); ok {
			if n.Name == "b" {
				t.Fatal("duplicate node b survived CSE")
			}
			count++
		}
	}
	if count != 2 {
		t.Fatalf("nodes after CSE = %d, want 2", count)
	}
	if comp.resolveRename("C", "b") != "a" {
		t.Fatalf("rename b -> %s", comp.resolveRename("C", "b"))
	}
	// s must now reference a twice.
	for _, s := range circ.MainModule().Body {
		if n, ok := s.(*ir.DefNode); ok && n.Name == "s" {
			if n.Value.String() != "add(a, a)" {
				t.Fatalf("s = %s", n.Value)
			}
		}
	}
}

func TestDCE(t *testing.T) {
	circ := &ir.Circuit{Main: "D", Modules: []*ir.Module{{
		Name: "D",
		Ports: []ir.Port{
			{Name: "clock", Dir: ir.Input, Tpe: ir.ClockType()},
			{Name: "reset", Dir: ir.Input, Tpe: ir.ResetType()},
			{Name: "x", Dir: ir.Input, Tpe: ir.UIntType(8)},
			{Name: "out", Dir: ir.Output, Tpe: ir.UIntType(8)},
		},
		Body: []ir.Stmt{
			&ir.DefNode{Name: "live1", Value: ir.Ref{Name: "x"}},
			&ir.DefNode{Name: "dead1", Value: ir.NewPrim(ir.OpNot, ir.Ref{Name: "x"})},
			&ir.DefNode{Name: "dead2", Value: ir.NewPrim(ir.OpNot, ir.Ref{Name: "dead1"})},
			&ir.DefNode{Name: "protected", Value: ir.NewPrim(ir.OpNot, ir.Ref{Name: "x"})},
			&ir.Connect{Loc: ir.Ref{Name: "out"}, Value: ir.Ref{Name: "live1"}},
		},
	}}}
	comp := NewCompilation(circ, false)
	comp.markDontTouch("D", "protected")
	if err := (&DCE{}).Run(comp); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range circ.MainModule().Body {
		if n, ok := s.(*ir.DefNode); ok {
			names[n.Name] = true
		}
	}
	if names["dead1"] || names["dead2"] {
		t.Fatalf("dead nodes survived: %v", names)
	}
	if !names["live1"] || !names["protected"] {
		t.Fatalf("live/protected nodes removed: %v", names)
	}
	if !comp.isRemoved("D", "dead2") {
		t.Fatal("removal not recorded")
	}
}

func TestCompileEndToEndOptimizedVsDebug(t *testing.T) {
	build := func() *ir.Circuit {
		circ, _ := buildAccumulator(t)
		return circ
	}
	opt, err := Compile(build(), false)
	if err != nil {
		t.Fatalf("optimized compile: %v", err)
	}
	dbg, err := Compile(build(), true)
	if err != nil {
		t.Fatalf("debug compile: %v", err)
	}
	if len(opt.Symbols) == 0 || len(dbg.Symbols) == 0 {
		t.Fatal("no symbols collected")
	}
	// Debug mode preserves at least as much symbol information (the
	// paper reports ~30% growth).
	optVars, dbgVars := countVars(opt.Symbols), countVars(dbg.Symbols)
	if dbgVars < optVars {
		t.Fatalf("debug symtab (%d vars) smaller than optimized (%d)", dbgVars, optVars)
	}
	// Optimized circuit body is no larger than debug body.
	if len(opt.Circuit.MainModule().Body) > len(dbg.Circuit.MainModule().Body) {
		t.Fatalf("optimized body (%d) larger than debug (%d)",
			len(opt.Circuit.MainModule().Body), len(dbg.Circuit.MainModule().Body))
	}
}

func countVars(symbols []*SymbolEntry) int {
	n := 0
	for _, e := range symbols {
		n += len(e.Vars)
	}
	return n
}

func TestCollectDropsOptimizedAwayVars(t *testing.T) {
	circ, _ := buildAccumulator(t)
	comp, err := Compile(circ, false)
	if err != nil {
		t.Fatal(err)
	}
	// Every surviving var must point at a real signal in the module.
	mod := comp.Circuit.MainModule()
	existing := map[string]bool{}
	for _, p := range mod.Ports {
		existing[p.Name] = true
	}
	ir.WalkStmts(mod.Body, func(s ir.Stmt) {
		switch d := s.(type) {
		case *ir.DefNode:
			existing[d.Name] = true
		case *ir.DefReg:
			existing[d.Name] = true
		}
	})
	for _, e := range comp.Symbols {
		for src, rtl := range e.Vars {
			if !existing[rtl] {
				t.Fatalf("symbol var %s -> %s references removed signal", src, rtl)
			}
		}
		if e.Enable != nil {
			for _, name := range ir.RefsIn(e.Enable) {
				if !existing[name] {
					t.Fatalf("enable %s references removed signal %s", e.Enable, name)
				}
			}
		}
	}
}

func TestGenVarsRecorded(t *testing.T) {
	circ, _ := buildAccumulator(t)
	comp, err := Compile(circ, true)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, gv := range comp.GenVars["Acc"] {
		kinds[gv.Name] = gv.Kind
	}
	if kinds["data_0"] != "port" || kinds["out"] != "port" {
		t.Fatalf("gen vars = %v", kinds)
	}
	if kinds["sum"] != "wire" {
		t.Fatalf("sum kind = %q", kinds["sum"])
	}
}

func keys(m map[string]ir.Expr) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
