package passes

import (
	"repro/internal/ir"
)

// Annotate is the first pass of the paper's Algorithm 1. It walks the
// (still conditional, pre-SSA) IR and attaches to every statement of
// interest its *enable condition*: the AND-reduction of the `when`
// condition stack on the path to the statement. This must run while the
// conditional structure is intact — once ExpandWhens/SSA flattens whens
// into muxes, the condition stack is gone (the paper makes the same
// observation about FIRRTL's Low form).
type Annotate struct{}

// Name implements Pass.
func (*Annotate) Name() string { return "annotate" }

// Run implements Pass.
func (*Annotate) Run(comp *Compilation) error {
	for _, m := range comp.Circuit.Modules {
		a := &annotator{comp: comp}
		a.walk(m.Body, nil)
	}
	return nil
}

type annotator struct {
	comp *Compilation
}

// andReduce folds a condition stack into a single expression; nil means
// "always enabled".
func andReduce(conds []ir.Expr) ir.Expr {
	if len(conds) == 0 {
		return nil
	}
	result := conds[0]
	for _, c := range conds[1:] {
		result = ir.NewPrim(ir.OpAnd, result, c)
	}
	return result
}

func (a *annotator) walk(body []ir.Stmt, conds []ir.Expr) {
	for _, s := range body {
		switch d := s.(type) {
		case *ir.When:
			a.annotate(s, conds)
			a.walk(d.Then, append(conds, d.Cond))
			a.walk(d.Else, append(conds, ir.NewPrim(ir.OpNot, d.Cond)))
		case *ir.Connect, *ir.MemWrite, *ir.DefNode:
			a.annotate(s, conds)
		}
	}
}

func (a *annotator) annotate(s ir.Stmt, conds []ir.Expr) {
	info := s.Locator()
	if !info.Valid() {
		return
	}
	enable := andReduce(conds)
	src := ""
	if enable != nil {
		src = ir.RenderInfix(enable)
	}
	a.comp.Annotations[s] = &Annotation{Info: info, Enable: enable, EnableSrc: src}
}
