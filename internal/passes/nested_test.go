package passes

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/generator"
	"repro/internal/ir"
)

// simEval compiles a circuit and evaluates its single output for given
// inputs via direct Low-form interpretation through the rtl/sim stack
// indirectly — here we only verify structural properties; behavioral
// equivalence is covered in internal/sim. These tests focus on SSA
// structure for deeply nested control flow.

func TestSSANestedWhens(t *testing.T) {
	c := generator.NewCircuit("N")
	m := c.NewModule("N")
	a := m.Input("a", ir.UIntType(1))
	b := m.Input("b", ir.UIntType(1))
	cc := m.Input("c", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(4))
	w := m.Wire("w", ir.UIntType(4))
	w.Set(m.Lit(0, 4))
	m.When(a, func() {
		w.Set(m.Lit(1, 4))
		m.When(b, func() {
			w.Set(m.Lit(2, 4))
			m.When(cc, func() {
				w.Set(m.Lit(3, 4))
			})
		})
	})
	out.Set(w)
	comp, err := Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	// Find the deepest entry: its enable condition must AND all three
	// inputs.
	var deepest *SymbolEntry
	for _, e := range comp.Symbols {
		if e.Enable != nil {
			refs := ir.RefsIn(e.Enable)
			if len(refs) >= 3 {
				deepest = e
			}
		}
	}
	if deepest == nil {
		t.Fatalf("no triple-nested enable found in %d symbols", len(comp.Symbols))
	}
	src := ir.RenderInfix(deepest.Enable)
	for _, name := range []string{"a", "b", "c"} {
		if !strings.Contains(src, name) {
			t.Fatalf("deep enable %q missing %s", src, name)
		}
	}
}

func TestSSAElseWhenChain(t *testing.T) {
	c := generator.NewCircuit("E")
	m := c.NewModule("E")
	sel := m.Input("sel", ir.UIntType(2))
	out := m.Output("out", ir.UIntType(4))
	w := m.Wire("w", ir.UIntType(4))
	w.Set(m.Lit(0, 4))
	m.When(sel.Eq(m.Lit(0, 2)), func() {
		w.Set(m.Lit(10, 4))
	}).ElseWhen(sel.Eq(m.Lit(1, 2)), func() {
		w.Set(m.Lit(11, 4))
	}).Otherwise(func() {
		w.Set(m.Lit(12, 4))
	})
	out.Set(w)
	comp, err := Compile(c.MustBuild(), true) // debug keeps everything
	if err != nil {
		t.Fatal(err)
	}
	// The else-when arm's enable must include the negation of the first
	// condition.
	foundNegated := false
	for _, e := range comp.Symbols {
		if e.EnableSrc != "" && strings.Contains(e.EnableSrc, "~") {
			foundNegated = true
		}
	}
	if !foundNegated {
		t.Fatal("no negated enable condition from else branches")
	}
}

func TestLowerVecOfBundles(t *testing.T) {
	c := generator.NewCircuit("VB")
	m := c.NewModule("VB")
	entryT := ir.Bundle{Fields: []ir.Field{
		{Name: "tag", Type: ir.UIntType(4)},
		{Name: "data", Type: ir.UIntType(8)},
	}}
	tbl := m.Wire("tbl", ir.Vec{Elem: entryT, Len: 2})
	out := m.Output("out", ir.UIntType(8))
	for i := 0; i < 2; i++ {
		tbl.Idx(i).Field("tag").Set(m.Lit(uint64(i), 4))
		tbl.Idx(i).Field("data").Set(m.Lit(uint64(i*7), 8))
	}
	out.Set(tbl.Idx(1).Field("data"))
	comp, err := Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatalf("vec-of-bundles: %v", err)
	}
	// Flattened names recorded with combined [i].field paths.
	fv := comp.FlatVar["VB"]
	if fv["tbl_1_data"] != "tbl[1].data" {
		t.Fatalf("FlatVar = %v", fv)
	}
}

func TestAggregateConnect(t *testing.T) {
	// Whole-bundle connect expands field-wise with flips honored.
	c := generator.NewCircuit("AC")
	m := c.NewModule("AC")
	chanT := ir.Bundle{Fields: []ir.Field{
		{Name: "bits", Type: ir.UIntType(8)},
		{Name: "valid", Type: ir.UIntType(1)},
		{Name: "ready", Flip: true, Type: ir.UIntType(1)},
	}}
	in := m.Input("a", chanT)    // a.ready is an output of this module
	outP := m.Output("b", chanT) // b.ready is an input of this module
	outP.Set(in)                 // bulk connect
	circ := c.MustBuild()
	comp, err := Compile(circ, false)
	if err != nil {
		t.Fatalf("bulk connect: %v", err)
	}
	mod := comp.Circuit.MainModule()
	// After compilation, b_bits and b_valid are driven from a_*, and
	// a_ready is driven from b_ready (flip reversal).
	var connects []string
	ir.WalkStmts(mod.Body, func(s ir.Stmt) {
		if cn, ok := s.(*ir.Connect); ok {
			connects = append(connects, cn.Loc.String()+"<="+cn.Value.String())
		}
	})
	joined := strings.Join(connects, ";")
	if !strings.Contains(joined, "a_ready<=") {
		t.Fatalf("flipped field not driven back: %v", connects)
	}
	if !strings.Contains(joined, "b_bits<=") || !strings.Contains(joined, "b_valid<=") {
		t.Fatalf("forward fields not driven: %v", connects)
	}
}

func TestRegWithoutResetHolds(t *testing.T) {
	c := generator.NewCircuit("H")
	m := c.NewModule("H")
	en := m.Input("en", ir.UIntType(1))
	d := m.Input("d", ir.UIntType(8))
	q := m.Output("q", ir.UIntType(8))
	r := m.Reg("r", ir.UIntType(8)) // no reset
	m.When(en, func() {
		r.Set(d)
	})
	q.Set(r)
	comp, err := Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	// The next-value expression must include the hold path (the reg
	// itself) but NOT a reset mux.
	var next ir.Expr
	ir.WalkStmts(comp.Circuit.MainModule().Body, func(s ir.Stmt) {
		if cn, ok := s.(*ir.Connect); ok {
			if ref, isRef := cn.Loc.(ir.Ref); isRef && ref.Name == "r" {
				next = cn.Value
			}
		}
	})
	if next == nil {
		t.Fatal("no next-value connect")
	}
	// Resolve through intermediate nodes (the merge mux lives in a
	// _GEN node) and check the transitive expression: hold path (the
	// register itself) present, reset absent.
	defs := map[string]ir.Expr{}
	ir.WalkStmts(comp.Circuit.MainModule().Body, func(s ir.Stmt) {
		if n, ok := s.(*ir.DefNode); ok {
			defs[n.Name] = n.Value
		}
	})
	seen := map[string]bool{}
	var holdsItself, seesReset bool
	var visit func(e ir.Expr)
	visit = func(e ir.Expr) {
		for _, name := range ir.RefsIn(e) {
			switch name {
			case "r":
				holdsItself = true
			case "reset":
				seesReset = true
			default:
				if def, ok := defs[name]; ok && !seen[name] {
					seen[name] = true
					visit(def)
				}
			}
		}
	}
	visit(next)
	if seesReset {
		t.Fatalf("un-reset register gained a reset mux: %s", next)
	}
	if !holdsItself {
		t.Fatalf("hold path missing from %s", next)
	}
}

// Property: compiling the same generated circuit twice (fresh builds)
// yields identical Low-form text — determinism matters for symbol
// table stability and caching.
func TestCompileDeterminismProperty(t *testing.T) {
	build := func(n int) string {
		c := generator.NewCircuit("D")
		m := c.NewModule("D")
		x := m.Input("x", ir.UIntType(8))
		out := m.Output("out", ir.UIntType(8))
		w := m.Wire("w", ir.UIntType(8))
		w.Set(m.Lit(0, 8))
		for i := 0; i < n; i++ {
			m.When(x.Bit(i%8), func() {
				w.Set(w.AddMod(m.Lit(uint64(i+1), 8)))
			})
		}
		out.Set(w)
		comp, err := Compile(c.MustBuild(), false)
		if err != nil {
			t.Fatal(err)
		}
		return ir.CircuitString(comp.Circuit)
	}
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		return build(n) == build(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
