package passes

import "runtime"

// runtimeCallers and pcLine wrap the runtime package so tests can
// capture their own source line numbers when asserting on locators.
func runtimeCallers(skip int, pcs []uintptr) int {
	return runtime.Callers(skip+1, pcs)
}

func pcLine(pc uintptr) int {
	frames := runtime.CallersFrames([]uintptr{pc})
	frame, _ := frames.Next()
	return frame.Line
}
