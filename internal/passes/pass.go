// Package passes implements the compiler pipeline that lowers High-form
// IR to simulatable Low form while extracting the hgdb symbol table, the
// paper's Algorithm 1: a first pass annotates statements with enable
// conditions while the IR still resembles the generator source, and a
// second pass collects surviving annotations after optimization.
//
// Pipeline (optimized build):
//
//	LowerAggregates → Annotate → SSA → ConstProp → CSE → DCE → Collect
//
// In debug mode (the paper's -O0 analog) the optimization passes are
// skipped, so every SSA temporary survives into the symbol table — the
// paper reports this grows the table by roughly 30%.
package passes

import (
	"fmt"

	"repro/internal/ir"
)

// SymbolEntry describes one emulated breakpoint: a generator source
// location inside a module definition, the condition under which the
// statement is "executing", and the variable bindings visible there.
type SymbolEntry struct {
	// Module is the *definition* name; one entry expands to one
	// breakpoint per instance of the module at debug time.
	Module string
	File   string
	Line   int
	Col    int
	// Order is the lexical order of the statement within the module,
	// used by the scheduler to order same-cycle breakpoints.
	Order int
	// Enable is the Low-form enable condition over module-local signal
	// names. Nil means always enabled.
	Enable ir.Expr
	// EnableSrc is the human-readable High-form condition (the paper
	// shows e.g. "data[0] % 2" next to Listing 2).
	EnableSrc string
	// Vars maps source-level variable names to module-local Low-form
	// signal names valid at this statement (SSA-resolved).
	Vars map[string]string
}

// Compilation carries the circuit and all cross-pass state.
type Compilation struct {
	Circuit *ir.Circuit
	// Debug selects the -O0 style build: optimizations skipped,
	// everything preserved for debugging.
	Debug bool

	// Annotations maps statements (by identity) to their computed
	// enable conditions; written by Annotate, read by SSA.
	Annotations map[ir.Stmt]*Annotation

	// Symbols is the symbol information produced by the SSA pass and
	// pruned by Collect.
	Symbols []*SymbolEntry

	// FlatVar maps, per module, flattened signal names back to their
	// dotted source paths ("io_out_bits" → "io.out.bits"), recorded by
	// LowerAggregates and used to present structured variables.
	FlatVar map[string]map[string]string

	// DontTouch lists, per module, signal names that optimization
	// passes must preserve.
	DontTouch map[string]map[string]bool

	// Renames records, per module, signal renamings performed by
	// optimization passes (CSE folds duplicates onto the first name;
	// const-prop folds aliases). Queried transitively by Collect.
	Renames map[string]map[string]string

	// Removed records, per module, signals deleted by DCE.
	Removed map[string]map[string]bool

	// GenVars lists, per module, the "generator variables" — the
	// module-level named objects (ports, registers, wires, instances)
	// that populate the debugger's generator-scope pane.
	GenVars map[string][]GenVar
}

// Annotation is the result of Algorithm 1's first pass for a single
// statement.
type Annotation struct {
	Info      ir.Info
	Enable    ir.Expr // High-form enable condition (pre-SSA names)
	EnableSrc string
}

// GenVar is one generator-level variable: a named module member and the
// flattened RTL signals that carry it.
type GenVar struct {
	Name string // dotted source name, e.g. "io.out.bits"
	RTL  string // flattened module-local signal name
	Kind string // "port", "reg", "wire", "node", "mem", "instance"
}

// NewCompilation wraps a circuit for compilation.
func NewCompilation(c *ir.Circuit, debug bool) *Compilation {
	return &Compilation{
		Circuit:     c,
		Debug:       debug,
		Annotations: map[ir.Stmt]*Annotation{},
		FlatVar:     map[string]map[string]string{},
		DontTouch:   map[string]map[string]bool{},
		Renames:     map[string]map[string]string{},
		Removed:     map[string]map[string]bool{},
		GenVars:     map[string][]GenVar{},
	}
}

// Pass is a single compilation pass.
type Pass interface {
	Name() string
	Run(*Compilation) error
}

// Compile runs the standard pipeline on a High-form circuit and returns
// the compilation with Low-form modules and collected symbols.
func Compile(c *ir.Circuit, debug bool) (*Compilation, error) {
	comp := NewCompilation(c, debug)
	pipeline := []Pass{
		&LowerAggregates{},
		&Annotate{},
		&SSA{},
	}
	if debug {
		// The paper's debug mode inserts DontTouch annotations and
		// disables optimization; we skip the optimization passes, which
		// is equivalent and faster to compile.
		pipeline = append(pipeline, &DontTouchAll{})
	} else {
		pipeline = append(pipeline, &ConstProp{}, &CSE{}, &DCE{})
	}
	pipeline = append(pipeline, &Collect{})
	for _, p := range pipeline {
		if err := p.Run(comp); err != nil {
			return nil, fmt.Errorf("passes: %s: %w", p.Name(), err)
		}
	}
	return comp, nil
}

// resolveRename chases the per-module rename chain for a signal name.
func (comp *Compilation) resolveRename(module, name string) string {
	renames := comp.Renames[module]
	if renames == nil {
		return name
	}
	for i := 0; i < 1000; i++ { // cycle guard
		next, ok := renames[name]
		if !ok {
			return name
		}
		name = next
	}
	return name
}

// markDontTouch records that a module-local signal must be preserved.
func (comp *Compilation) markDontTouch(module, name string) {
	m := comp.DontTouch[module]
	if m == nil {
		m = map[string]bool{}
		comp.DontTouch[module] = m
	}
	m[name] = true
}

// isDontTouch reports whether a signal is protected.
func (comp *Compilation) isDontTouch(module, name string) bool {
	return comp.DontTouch[module][name]
}

// recordRename notes that old is now represented by new within module.
func (comp *Compilation) recordRename(module, old, new string) {
	m := comp.Renames[module]
	if m == nil {
		m = map[string]string{}
		comp.Renames[module] = m
	}
	m[old] = new
}

// recordRemoved notes that a signal was deleted within module.
func (comp *Compilation) recordRemoved(module, name string) {
	m := comp.Removed[module]
	if m == nil {
		m = map[string]bool{}
		comp.Removed[module] = m
	}
	m[name] = true
}

// isRemoved reports whether a signal was deleted.
func (comp *Compilation) isRemoved(module, name string) bool {
	return comp.Removed[module][name]
}
