package passes

import (
	"sort"

	"repro/internal/ir"
)

// Collect is the second pass of the paper's Algorithm 1: after
// optimization it checks which annotated IR nodes still exist in the
// circuit state, applies optimization renames, and computes the final
// symbol information. Variables that were optimized away disappear from
// frames, and breakpoints whose enable condition no longer exists are
// dropped entirely — the same observable behavior as debugging -O2
// software builds.
type Collect struct{}

// Name implements Pass.
func (*Collect) Name() string { return "collect" }

// Run implements Pass.
func (*Collect) Run(comp *Compilation) error {
	// Gather surviving signal names per module.
	surviving := map[string]map[string]bool{}
	for _, m := range comp.Circuit.Modules {
		set := map[string]bool{}
		for _, p := range m.Ports {
			set[p.Name] = true
		}
		ir.WalkStmts(m.Body, func(s ir.Stmt) {
			switch d := s.(type) {
			case *ir.DefNode:
				set[d.Name] = true
			case *ir.DefReg:
				set[d.Name] = true
			case *ir.DefMem:
				set[d.Name] = true
			case *ir.DefInstance:
				set[d.Name] = true
			}
		})
		surviving[m.Name] = set
	}

	resolve := func(module, name string) (string, bool) {
		name = comp.resolveRename(module, name)
		if comp.isRemoved(module, name) {
			return "", false
		}
		return name, surviving[module][name]
	}

	var kept []*SymbolEntry
	for _, e := range comp.Symbols {
		// Rewrite the enable expression through renames; drop the
		// breakpoint if any referenced signal is gone.
		enableAlive := true
		if e.Enable != nil {
			e.Enable = ir.MapExpr(e.Enable, func(sub ir.Expr) ir.Expr {
				if r, ok := sub.(ir.Ref); ok {
					if to, alive := resolve(e.Module, r.Name); alive {
						return ir.Ref{Name: to}
					}
					enableAlive = false
				}
				return sub
			})
		}
		if !enableAlive {
			continue
		}
		vars := map[string]string{}
		for src, rtl := range e.Vars {
			if to, alive := resolve(e.Module, rtl); alive {
				// Present flattened aggregates under their dotted source
				// path when one was recorded.
				srcName := src
				if dotted, ok := comp.FlatVar[e.Module][src]; ok {
					srcName = dotted
				}
				vars[srcName] = to
			}
		}
		e.Vars = vars
		kept = append(kept, e)
	}
	sort.SliceStable(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		return a.Order < b.Order
	})
	comp.Symbols = kept

	// Prune generator variables whose RTL signals were optimized away.
	for mod, gvs := range comp.GenVars {
		var keptGV []GenVar
		for _, gv := range gvs {
			if gv.Kind == "mem" || gv.Kind == "instance" {
				keptGV = append(keptGV, gv)
				continue
			}
			if to, alive := resolve(mod, gv.RTL); alive {
				gv.RTL = to
				keptGV = append(keptGV, gv)
			}
		}
		comp.GenVars[mod] = keptGV
	}
	return nil
}
