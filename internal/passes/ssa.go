package passes

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// SSA performs the combined ExpandWhens + Static Single Assignment
// transform of §3.1: `when` blocks are flattened into muxes, every wire
// assignment produces a fresh temporary (sum → sum_0, sum_1, …), and the
// symbol information linking source lines to those temporaries — with
// their enable conditions — is emitted as a byproduct. The output is
// Low form: only ground-typed, single-assignment nodes, registers with
// a single next-value connect, memories, and instances.
//
// Wire reads follow software sequencing: a read observes the most
// recent assignment, which is what makes the paper's Listing 1
// accumulator meaningful in hardware.
type SSA struct{}

// Name implements Pass.
func (*SSA) Name() string { return "ssa" }

// Run implements Pass.
func (*SSA) Run(comp *Compilation) error {
	for i, m := range comp.Circuit.Modules {
		sc := newSSACtx(comp, m)
		nm, err := sc.run()
		if err != nil {
			return fmt.Errorf("module %s: %w", m.Name, err)
		}
		comp.Circuit.Modules[i] = nm
	}
	return nil
}

type sigKind int

const (
	kInput sigKind = iota
	kOutput
	kWire
	kReg
	kNode
	kMem
	kInstance
)

type ssaCtx struct {
	comp  *Compilation
	mod   *ir.Module
	out   []ir.Stmt
	kinds map[string]sigKind
	// env holds the current SSA value for wires/outputs and the pending
	// next-value expression for registers; instance input nets are keyed
	// "inst.port".
	env     map[string]ir.Expr
	regs    []*ir.DefReg
	regInit map[string]ir.Expr
	// wireOrder/outputs/instInputs preserve declaration order for
	// deterministic finalization.
	wireOrder  []string
	outputs    []string
	instIn     []string
	names      map[string]bool
	namedNodes map[string]bool
	// declDepth records the enable-stack depth at which each net was
	// declared; nets declared inside a When branch are scoped to it and
	// excluded from that When's merge.
	declDepth map[string]int
	tempN     int
	genN      int
	ssaN      map[string]int
	enables   []ir.Expr
	order     int
}

func newSSACtx(comp *Compilation, m *ir.Module) *ssaCtx {
	sc := &ssaCtx{
		comp:       comp,
		mod:        m,
		kinds:      map[string]sigKind{},
		env:        map[string]ir.Expr{},
		regInit:    map[string]ir.Expr{},
		names:      map[string]bool{},
		namedNodes: map[string]bool{},
		declDepth:  map[string]int{},
		ssaN:       map[string]int{},
	}
	for _, p := range m.Ports {
		sc.names[p.Name] = true
		if p.Dir == ir.Input {
			sc.kinds[p.Name] = kInput
		} else {
			sc.kinds[p.Name] = kOutput
			sc.outputs = append(sc.outputs, p.Name)
		}
	}
	ir.WalkStmts(m.Body, func(s ir.Stmt) {
		switch d := s.(type) {
		case *ir.DefWire:
			sc.names[d.Name] = true
		case *ir.DefReg:
			sc.names[d.Name] = true
		case *ir.DefNode:
			sc.names[d.Name] = true
		case *ir.DefMem:
			sc.names[d.Name] = true
		case *ir.DefInstance:
			sc.names[d.Name] = true
		}
	})
	return sc
}

func (sc *ssaCtx) run() (*ir.Module, error) {
	if err := sc.process(sc.mod.Body); err != nil {
		return nil, err
	}
	// Finalize wires: re-expose the original wire name as an alias node
	// of its final SSA value (Listing 2's trailing `sum = sum2`).
	for _, w := range sc.wireOrder {
		if v := sc.env[w]; v != nil {
			sc.emit(&ir.DefNode{Name: w, Value: v})
			sc.kinds[w] = kNode
		}
	}
	// Finalize outputs.
	for _, o := range sc.outputs {
		v := sc.env[o]
		if v == nil {
			return nil, fmt.Errorf("output port %q is never assigned", o)
		}
		sc.emit(&ir.Connect{Loc: ir.Ref{Name: o}, Value: v})
	}
	// Finalize instance inputs.
	for _, key := range sc.instIn {
		v := sc.env[key]
		if v == nil {
			return nil, fmt.Errorf("instance input %q is never assigned", key)
		}
		dot := strings.IndexByte(key, '.')
		sc.emit(&ir.Connect{
			Loc:   ir.SubField{E: ir.Ref{Name: key[:dot]}, Name: key[dot+1:]},
			Value: v,
		})
	}
	// Finalize registers: next-value connect, qualified by reset.
	for _, r := range sc.regs {
		next := sc.env[r.Name]
		if next == nil {
			next = ir.Ref{Name: r.Name} // hold
		}
		if init, ok := sc.regInit[r.Name]; ok {
			next = ir.Mux{Cond: ir.Ref{Name: "reset"}, T: init, F: next}
		}
		sc.emit(&ir.Connect{Loc: ir.Ref{Name: r.Name}, Value: next, Info: r.Info})
	}
	return &ir.Module{Name: sc.mod.Name, Ports: sc.mod.Ports, Body: sc.out, Attrs: sc.mod.Attrs}, nil
}

func (sc *ssaCtx) emit(s ir.Stmt) { sc.out = append(sc.out, s) }

// newName reserves a fresh signal name derived from base.
func (sc *ssaCtx) newName(base string, counter *int) string {
	for {
		name := fmt.Sprintf("%s_%d", base, *counter)
		*counter++
		if !sc.names[name] {
			sc.names[name] = true
			return name
		}
	}
}

func (sc *ssaCtx) newSSATemp(wire string) string {
	n := sc.ssaN[wire]
	name := sc.newName(wire, &n)
	sc.ssaN[wire] = n
	return name
}

func (sc *ssaCtx) process(body []ir.Stmt) error {
	for _, s := range body {
		switch d := s.(type) {
		case *ir.DefWire:
			sc.kinds[d.Name] = kWire
			sc.declDepth[d.Name] = len(sc.enables)
			sc.wireOrder = append(sc.wireOrder, d.Name)
		case *ir.DefReg:
			sc.kinds[d.Name] = kReg
			sc.declDepth[d.Name] = len(sc.enables)
			sc.regs = append(sc.regs, d)
			if d.Init != nil {
				init, err := sc.subst(d.Init)
				if err != nil {
					return err
				}
				sc.regInit[d.Name] = init
			}
			sc.emit(&ir.DefReg{Name: d.Name, Tpe: d.Tpe, Info: d.Info})
		case *ir.DefNode:
			v, err := sc.subst(d.Value)
			if err != nil {
				return err
			}
			sc.recordSymbol(s)
			sc.kinds[d.Name] = kNode
			if d.Info.Valid() {
				sc.namedNodes[d.Name] = true
			}
			sc.emit(&ir.DefNode{Name: d.Name, Value: v, Info: d.Info})
		case *ir.DefMem:
			sc.kinds[d.Name] = kMem
			sc.emit(d)
		case *ir.DefInstance:
			sc.kinds[d.Name] = kInstance
			sc.emit(d)
			// Track the child's input ports as connectable nets.
			child := sc.comp.Circuit.Module(d.Module)
			if child == nil {
				return fmt.Errorf("instance %q of unknown module %q", d.Name, d.Module)
			}
			for _, p := range child.Ports {
				if p.Dir == ir.Input {
					sc.instIn = append(sc.instIn, d.Name+"."+p.Name)
					sc.declDepth[d.Name+"."+p.Name] = len(sc.enables)
				}
			}
		case *ir.MemWrite:
			addr, err := sc.subst(d.Addr)
			if err != nil {
				return err
			}
			data, err := sc.subst(d.Data)
			if err != nil {
				return err
			}
			en, err := sc.subst(d.En)
			if err != nil {
				return err
			}
			if g := andReduce(sc.enables); g != nil {
				en = ir.NewPrim(ir.OpAnd, g, en)
			}
			sc.recordSymbol(s)
			sc.emit(&ir.MemWrite{Mem: d.Mem, Addr: addr, Data: data, En: en, Info: d.Info})
		case *ir.Connect:
			if err := sc.processConnect(d); err != nil {
				return err
			}
		case *ir.When:
			if err := sc.processWhen(d); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unsupported statement %T in SSA input", s)
		}
	}
	return nil
}

func (sc *ssaCtx) processConnect(c *ir.Connect) error {
	v, err := sc.subst(c.Value)
	if err != nil {
		return err
	}
	// Snapshot symbol info BEFORE updating the environment: a debugger
	// stops before the line executes, so `sum` at Listing 2 line 4 must
	// read sum_0, not sum_1.
	sc.recordSymbol(c)
	switch loc := c.Loc.(type) {
	case ir.Ref:
		switch sc.kinds[loc.Name] {
		case kWire, kOutput:
			temp := sc.newSSATemp(loc.Name)
			sc.kinds[temp] = kNode
			sc.emit(&ir.DefNode{Name: temp, Value: v, Info: c.Info})
			sc.env[loc.Name] = ir.Ref{Name: temp}
		case kReg:
			sc.env[loc.Name] = v
		case kInput:
			return fmt.Errorf("cannot assign to input port %q", loc.Name)
		default:
			return fmt.Errorf("cannot assign to %q (not a wire, register, or output)", loc.Name)
		}
	case ir.SubField:
		ref, ok := loc.E.(ir.Ref)
		if !ok || sc.kinds[ref.Name] != kInstance {
			return fmt.Errorf("unsupported connect target %s", c.Loc)
		}
		sc.env[ref.Name+"."+loc.Name] = v
	default:
		return fmt.Errorf("unsupported connect target %s", c.Loc)
	}
	return nil
}

func (sc *ssaCtx) processWhen(w *ir.When) error {
	condV, err := sc.subst(w.Cond)
	if err != nil {
		return err
	}
	// Name the condition so enable expressions reference one signal the
	// debugger can fetch (and the simulator computes anyway).
	var condRef ir.Expr
	switch condV.(type) {
	case ir.Ref, ir.Const:
		condRef = condV
	default:
		name := sc.newName("_T", &sc.tempN)
		sc.kinds[name] = kNode
		sc.emit(&ir.DefNode{Name: name, Value: condV, Info: w.Info})
		condRef = ir.Ref{Name: name}
	}

	saved := copyEnv(sc.env)

	sc.enables = append(sc.enables, condRef)
	if err := sc.process(w.Then); err != nil {
		return err
	}
	sc.enables = sc.enables[:len(sc.enables)-1]
	thenEnv := sc.env

	sc.env = copyEnv(saved)
	sc.enables = append(sc.enables, ir.NewPrim(ir.OpNot, condRef))
	if err := sc.process(w.Else); err != nil {
		return err
	}
	sc.enables = sc.enables[:len(sc.enables)-1]
	elseEnv := sc.env

	// Merge: for every net whose value diverged between branches, emit a
	// mux temporary (FIRRTL's _GEN_n nodes, visible in the paper's
	// Listing 4).
	merged := copyEnv(saved)
	depth := len(sc.enables)
	for name := range union(thenEnv, elseEnv) {
		// Nets declared inside either branch are scoped to it; they do
		// not merge and are unreadable afterwards.
		if sc.declDepth[name] > depth {
			continue
		}
		tv, ev := thenEnv[name], elseEnv[name]
		if exprEqual(tv, ev) {
			merged[name] = tv
			continue
		}
		if tv == nil || ev == nil {
			// Assigned on only one path with no prior default: for a
			// register this means "hold", expressed as the register
			// itself; for anything else it is an initialization bug.
			if sc.kinds[name] == kReg {
				hold := ir.Expr(ir.Ref{Name: name})
				if tv == nil {
					tv = hold
				}
				if ev == nil {
					ev = hold
				}
			} else {
				return fmt.Errorf("net %q conditionally assigned at %s without a prior unconditional assignment", name, w.Info)
			}
		}
		gen := sc.newName("_GEN", &sc.genN)
		sc.kinds[gen] = kNode
		sc.emit(&ir.DefNode{Name: gen, Value: ir.Mux{Cond: condRef, T: tv, F: ev}, Info: w.Info})
		merged[name] = ir.Ref{Name: gen}
	}
	sc.env = merged
	return nil
}

// subst rewrites reads of wires/outputs to their current SSA values.
func (sc *ssaCtx) subst(e ir.Expr) (ir.Expr, error) {
	var substErr error
	out := ir.MapExpr(e, func(sub ir.Expr) ir.Expr {
		r, ok := sub.(ir.Ref)
		if !ok {
			return sub
		}
		switch sc.kinds[r.Name] {
		case kWire, kOutput:
			v := sc.env[r.Name]
			if v == nil {
				if substErr == nil {
					substErr = fmt.Errorf("read of %q before any assignment", r.Name)
				}
				return sub
			}
			return v
		default:
			return sub
		}
	})
	return out, substErr
}

// recordSymbol emits a SymbolEntry for an annotated statement.
func (sc *ssaCtx) recordSymbol(s ir.Stmt) {
	ann := sc.comp.Annotations[s]
	if ann == nil {
		return
	}
	entry := &SymbolEntry{
		Module:    sc.mod.Name,
		File:      ann.Info.File,
		Line:      ann.Info.Line,
		Col:       ann.Info.Col,
		Order:     sc.order,
		Enable:    andReduce(sc.enables),
		EnableSrc: ann.EnableSrc,
		Vars:      sc.snapshotVars(),
	}
	sc.order++
	sc.comp.Symbols = append(sc.comp.Symbols, entry)
}

// snapshotVars captures the visible variable bindings: wires and
// outputs resolve to their current SSA temporary; registers, inputs,
// and named nodes resolve to themselves.
func (sc *ssaCtx) snapshotVars() map[string]string {
	vars := map[string]string{}
	for name, kind := range sc.kinds {
		switch kind {
		case kWire, kOutput:
			if v, ok := sc.env[name].(ir.Ref); ok {
				vars[name] = v.Name
			}
		case kReg:
			vars[name] = name
		case kInput:
			if name != "clock" && name != "reset" {
				vars[name] = name
			}
		case kNode:
			if sc.namedNodes[name] {
				vars[name] = name
			}
		}
	}
	return vars
}

func copyEnv(env map[string]ir.Expr) map[string]ir.Expr {
	out := make(map[string]ir.Expr, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func union(a, b map[string]ir.Expr) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func exprEqual(a, b ir.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}
