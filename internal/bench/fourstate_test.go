package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/riscv"
)

// This file pins the two-state fast path to the four-state general
// evaluator over the real Figure 5 machines: on all-known RISC-V
// workloads the compiled/fused eval.Value pipeline and the val.Bits
// tree walk must produce bit-identical stop sequences and frame
// contents — the guarantee that lets the runtime keep the fast path as
// the default and fall to the general path only per-signal.

// TestGeneralEvalStopEquivalenceRISCV runs randomized breakpoint sets
// (a third conditional, with case equality sprinkled in) twice per
// workload — once on the default fast pipeline, once with
// SetGeneralEval forcing every condition through the four-state
// tree walk — and requires identical stop signatures, including every
// frame variable's value, unknown flag, and rendered display.
func TestGeneralEvalStopEquivalenceRISCV(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs")
	}
	byName := workloadsByName()
	for _, tc := range []struct {
		workload string
		seed     uint64
	}{
		{"towers", 0x9E3779B97F4A7C15},
		{"vvadd", 0xBF58476D1CE4E5B9},
		{"mt-idle", 0x94D049BB133111EB},
	} {
		ws := byName[tc.workload]
		if len(ws) == 0 {
			t.Fatalf("workload %s missing", tc.workload)
		}
		w := ws[0]
		t.Run(tc.workload, func(t *testing.T) {
			probe, err := riscv.NewMachine(map[bool]int{true: 2, false: 1}[w.MT], false)
			if err != nil {
				t.Fatal(err)
			}
			rnd := xorshift(tc.seed)
			choices := chooseBreakpoints(probe, rnd, 8)
			// Sprinkle case equality into the conditions: on known
			// two-state values === compiles to the same program as ==,
			// but takes the CaseEq path in the general evaluator — both
			// sides of the differential must agree anyway.
			for i := range choices {
				if i%2 == 0 && choices[i].cond != "" {
					choices[i].cond = strings.Replace(choices[i].cond, "==", "===", 1)
				}
			}
			fast, rtFast := runStopsWith(t, w, choices, func(*core.Runtime) {})
			general, rtGen := runStopsWith(t, w, choices,
				func(rt *core.Runtime) { rt.SetGeneralEval(true) })
			if rtGen.FusedRuns() != 0 {
				t.Fatal("general-eval mode still executed the fused program")
			}
			if len(general) != len(fast) {
				t.Fatalf("stop counts differ: general=%d fast=%d", len(general), len(fast))
			}
			for i := range general {
				if general[i] != fast[i] {
					t.Fatalf("stop %d differs:\ngeneral: %s\nfast:    %s", i, general[i], fast[i])
				}
			}
			t.Logf("%s: %d stops identical across fast (fused runs=%d) and general paths",
				tc.workload, len(fast), rtFast.FusedRuns())
		})
	}
}
