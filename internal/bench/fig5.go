// Package bench implements the paper's evaluation harness (§4.3,
// Figure 5): simulation time for the RocketChip benchmark suite under
// four configurations — baseline (optimized), baseline + hgdb, debug
// (unoptimized), debug + hgdb — normalized per workload to baseline,
// plus the §4.1 symbol-table and netlist size statistics. The paper's
// claim: hgdb overhead stays below 5% in both build modes, because the
// only cost with no breakpoint inserted is the clock-edge callback's
// immediate return. Every measured run is validated against the Go
// reference models first, so timings measure correct executions.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/riscv"
	"repro/internal/symtab"
	"repro/internal/vpi"
)

// Config names the four Figure 5 configurations.
type Config int

const (
	// Baseline is the optimized build without hgdb.
	Baseline Config = iota
	// BaselineHgdb is the optimized build with the hgdb runtime
	// attached (no breakpoints inserted).
	BaselineHgdb
	// Debug is the unoptimized (DontTouch) build without hgdb.
	Debug
	// DebugHgdb is the unoptimized build with hgdb attached.
	DebugHgdb
	numConfigs
)

func (c Config) String() string {
	switch c {
	case Baseline:
		return "baseline"
	case BaselineHgdb:
		return "baseline+hgdb"
	case Debug:
		return "debug"
	case DebugHgdb:
		return "debug+hgdb"
	}
	return fmt.Sprintf("Config(%d)", int(c))
}

// Row is one workload's measurements.
type Row struct {
	Workload string
	// Seconds holds wall-clock simulation time per config.
	Seconds [numConfigs]float64
	// Cycles is the simulated cycle count (identical across configs —
	// checked).
	Cycles uint64
	// CPIMilli is the workload's CPI ×1000 on core 0.
	CPIMilli uint64
	// Checked reports that the architectural results were validated
	// against the Go reference model in every configuration.
	Checked bool
}

// Normalized returns the per-config time normalized to baseline.
func (r *Row) Normalized(c Config) float64 {
	if r.Seconds[Baseline] == 0 {
		return 0
	}
	return r.Seconds[c] / r.Seconds[Baseline]
}

// HgdbOverhead returns the fractional overhead hgdb adds to a build
// mode: (with-hgdb − without) / without.
func (r *Row) HgdbOverhead(debug bool) float64 {
	base, with := Baseline, BaselineHgdb
	if debug {
		base, with = Debug, DebugHgdb
	}
	if r.Seconds[base] == 0 {
		return 0
	}
	return r.Seconds[with]/r.Seconds[base] - 1
}

// prepared is one workload+config ready for repeated timed runs.
type prepared struct {
	w  *riscv.Workload
	m  *riscv.Machine
	rt *core.Runtime
}

// setupWorkload builds the machine for one configuration.
func setupWorkload(w *riscv.Workload, cfg Config) (*prepared, error) {
	debugBuild := cfg == Debug || cfg == DebugHgdb
	withHgdb := cfg == BaselineHgdb || cfg == DebugHgdb
	nCores := 1
	if w.MT {
		nCores = 2
	}
	m, err := riscv.NewMachine(nCores, debugBuild)
	if err != nil {
		return nil, err
	}
	p := &prepared{w: w, m: m}
	if withHgdb {
		rt, err := core.New(vpi.NewSimBackend(m.Sim), m.Table)
		if err != nil {
			return nil, err
		}
		// A handler is installed (the runtime is "live") but no
		// breakpoint is inserted: the paper's attach-only config.
		rt.SetHandler(func(*core.StopEvent) core.Command { return core.CmdContinue })
		p.rt = rt
	}
	return p, nil
}

// runOnce reloads, resets, runs, and validates one execution, returning
// the wall-clock simulation time.
func (p *prepared) runOnce() (time.Duration, *riscv.RunResult, error) {
	for i := range p.m.Cores {
		if err := p.m.Load(i, p.w.Prog); err != nil {
			return 0, nil, err
		}
	}
	if err := p.m.Reset(); err != nil {
		return 0, nil, err
	}
	runtime.GC()
	start := time.Now()
	res, err := p.m.Run(p.w.MaxCycles)
	d := time.Since(start)
	if err != nil {
		return 0, nil, err
	}
	if !res.Halted {
		return 0, nil, fmt.Errorf("bench: %s did not halt", p.w.Name)
	}
	// Validate every run: hgdb must never perturb results.
	addr, err := p.w.ResultAddr()
	if err != nil {
		return 0, nil, err
	}
	for coreID := range p.m.Cores {
		got, err := p.m.ReadWord(coreID, addr)
		if err != nil {
			return 0, nil, err
		}
		if got != p.w.Expected(coreID) {
			return 0, nil, fmt.Errorf("bench: %s: core %d result %d, want %d",
				p.w.Name, coreID, got, p.w.Expected(coreID))
		}
	}
	return d, res, nil
}

// RunWorkload measures one workload under one configuration, keeping
// the MINIMUM wall-clock time over `repeat` runs.
func RunWorkload(w *riscv.Workload, cfg Config, repeat int) (seconds float64, res *riscv.RunResult, err error) {
	p, err := setupWorkload(w, cfg)
	if err != nil {
		return 0, nil, err
	}
	best := time.Duration(0)
	for r := 0; r < repeat; r++ {
		d, r2, err := p.runOnce()
		if err != nil {
			return 0, nil, err
		}
		res = r2
		if best == 0 || d < best {
			best = d
		}
	}
	return best.Seconds(), res, nil
}

// RunFig5 measures every workload under all four configurations. The
// configurations are *interleaved* round-robin — one run of each per
// round — so slow environmental drift (CPU frequency, co-tenants)
// biases every configuration equally, and the per-config minimum over
// rounds strips the remaining noise.
func RunFig5(repeat int) ([]Row, error) {
	var rows []Row
	for _, w := range riscv.Workloads() {
		row := Row{Workload: w.Name, Checked: true}
		var preps [numConfigs]*prepared
		for cfg := Baseline; cfg < numConfigs; cfg++ {
			p, err := setupWorkload(w, cfg)
			if err != nil {
				return nil, err
			}
			preps[cfg] = p
		}
		best := [numConfigs]time.Duration{}
		for round := 0; round < repeat; round++ {
			for cfg := Baseline; cfg < numConfigs; cfg++ {
				d, res, err := preps[cfg].runOnce()
				if err != nil {
					return nil, err
				}
				if best[cfg] == 0 || d < best[cfg] {
					best[cfg] = d
				}
				if cfg == Baseline {
					row.Cycles = res.Cycles
					row.CPIMilli = res.CPIMilli[0]
				} else if res.Cycles != row.Cycles {
					return nil, fmt.Errorf("bench: %s cycle count varies across configs (%d vs %d)",
						w.Name, res.Cycles, row.Cycles)
				}
			}
		}
		for cfg := Baseline; cfg < numConfigs; cfg++ {
			row.Seconds[cfg] = best[cfg].Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig5 renders the Figure 5 table: normalized simulation time per
// configuration plus the hgdb overhead columns the paper's claim rests
// on.
func PrintFig5(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "%-12s %8s %14s %8s %12s %8s | %9s %9s | %6s\n",
		"workload", "baseline", "baseline+hgdb", "debug", "debug+hgdb",
		"cycles", "ovh(base)", "ovh(debug)", "CPI")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8.2f %14.2f %8.2f %12.2f %8d | %8.1f%% %8.1f%% | %3d.%03d\n",
			r.Workload,
			r.Normalized(Baseline), r.Normalized(BaselineHgdb),
			r.Normalized(Debug), r.Normalized(DebugHgdb),
			r.Cycles,
			100*r.HgdbOverhead(false), 100*r.HgdbOverhead(true),
			r.CPIMilli/1000, r.CPIMilli%1000)
	}
}

// SymtabStats is the §4.1 measurement: symbol-table rows and netlist
// signal counts, optimized vs debug builds of the SoC.
type SymtabStats struct {
	OptRows, DbgRows       int
	OptSignals, DbgSignals int
	OptVars, DbgVars       int
}

// SymtabSizes measures the §4.1 statistic: symbol table and generated
// RTL growth in debug mode for the SoC design.
func SymtabSizes() (*SymtabStats, error) {
	mOpt, err := riscv.NewMachine(1, false)
	if err != nil {
		return nil, err
	}
	mDbg, err := riscv.NewMachine(1, true)
	if err != nil {
		return nil, err
	}
	return &SymtabStats{
		OptRows:    mOpt.Table.TotalRows(),
		DbgRows:    mDbg.Table.TotalRows(),
		OptSignals: mOpt.Sim.Netlist().NumSignals(),
		DbgSignals: mDbg.Sim.Netlist().NumSignals(),
		OptVars:    mOpt.Table.NumRows()["variable"],
		DbgVars:    mDbg.Table.NumRows()["variable"],
	}, nil
}

// SymtabTable exposes the tables for deeper inspection.
func SymtabTable(debug bool) (*symtab.Table, error) {
	m, err := riscv.NewMachine(1, debug)
	if err != nil {
		return nil, err
	}
	return m.Table, nil
}
