package bench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/riscv"
)

// This file pins fused whole-schedule compilation to exhaustive
// evaluation over the real Figure 5 machines, at the scale the
// optimization targets: randomized sets of 100+ armed breakpoints. The
// fused path is the default, so runStopsWith with no configuration
// exercises it; SetFusedEval(false) gives the per-group delta baseline
// and SetExhaustiveEval(true) the ground truth.

// chooseManyBreakpoints keeps drawing randomized choices until the
// armed set would reach the target count (each choice can arm several
// statements and instances).
func chooseManyBreakpoints(t *testing.T, m *riscv.Machine, rnd func() uint64, target int) []bpChoice {
	t.Helper()
	var choices []bpChoice
	armed := map[int64]bool{}
	for tries := 0; len(armed) < target && tries < 64; tries++ {
		for _, c := range chooseBreakpoints(m, rnd, 16) {
			choices = append(choices, c)
			for _, bp := range m.Table.BreakpointsAt(c.file, c.line) {
				if c.instance == "" || bp.InstanceName == c.instance {
					armed[bp.ID] = true
				}
			}
		}
	}
	if len(armed) < target {
		t.Skipf("symbol table too small: only %d distinct breakpoints reachable", len(armed))
	}
	return choices
}

// TestFusedStopEquivalenceRISCV is the tentpole acceptance
// differential: with 100+ randomized armed breakpoints on the RISC-V
// workloads, the fused whole-schedule path produces the identical stop
// sequence — times, locations, hit instances, frame values — as
// exhaustive per-edge evaluation (and, on towers, as the per-group
// delta path).
func TestFusedStopEquivalenceRISCV(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs")
	}
	byName := workloadsByName()
	for _, tc := range []struct {
		workload string
		seed     uint64
		threeWay bool
	}{
		{"towers", 0x9E3779B97F4A7C15, true},
		{"vvadd", 0xBF58476D1CE4E5B9, false},
		{"mt-idle", 0x94D049BB133111EB, false},
	} {
		ws := byName[tc.workload]
		if len(ws) == 0 {
			t.Fatalf("workload %s missing", tc.workload)
		}
		w := ws[0]
		t.Run(tc.workload, func(t *testing.T) {
			probe, err := riscv.NewMachine(map[bool]int{true: 2, false: 1}[w.MT], false)
			if err != nil {
				t.Fatal(err)
			}
			rnd := xorshift(tc.seed)
			choices := chooseManyBreakpoints(t, probe, rnd, 100)
			exhaustive, _ := runStops(t, w, choices, true)
			fused, rt := runStopsWith(t, w, choices, func(*core.Runtime) {})
			if n := len(rt.ListBreakpoints()); n < 100 {
				t.Fatalf("only %d breakpoints armed, want 100+", n)
			}
			if len(fused) != len(exhaustive) {
				t.Fatalf("stop counts differ: fused=%d exhaustive=%d", len(fused), len(exhaustive))
			}
			for i := range fused {
				if fused[i] != exhaustive[i] {
					t.Fatalf("stop %d differs:\nfused:      %s\nexhaustive: %s", i, fused[i], exhaustive[i])
				}
			}
			if rt.FusedRuns() == 0 {
				t.Fatal("fused whole-schedule program never executed")
			}
			stats, ok := rt.FuseInfo()
			if !ok {
				t.Fatal("no fused schedule was built")
			}
			t.Logf("%s: %d stops over %d armed; fused %s", tc.workload, len(fused),
				len(rt.ListBreakpoints()), fmt.Sprintf("%+v", stats))
			if tc.threeWay {
				perGroup, _ := runStopsWith(t, w, choices, func(rt *core.Runtime) { rt.SetFusedEval(false) })
				if len(perGroup) != len(exhaustive) {
					t.Fatalf("stop counts differ: per-group=%d exhaustive=%d", len(perGroup), len(exhaustive))
				}
				for i := range perGroup {
					if perGroup[i] != exhaustive[i] {
						t.Fatalf("stop %d differs:\nper-group:  %s\nexhaustive: %s", i, perGroup[i], exhaustive[i])
					}
				}
			}
		})
	}
}
