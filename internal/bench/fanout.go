package bench

// Broadcast fan-out load harness: a live counter simulation stepped
// through a breakpoint storm by one controller while N ws observers
// (and optionally DAP adapter sessions) consume the stop broadcast.
// Reports p50/p99 stop-event latency (broadcast stamp → observer
// receipt), per-edge simulator slowdown attributable to the fan-out,
// coalesce/drop counts, frame-encoding split, and bytes on the wire.
// Used by cmd/hgdb-load and BenchmarkBroadcastFanout.

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dap"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vpi"
)

// FanoutOptions configures one load run.
type FanoutOptions struct {
	// Observers is the number of concurrent ws observer sessions.
	Observers int
	// DAPClients is the number of concurrent DAP adapter sessions
	// bridged onto the same server (each is one more hgdb session plus
	// the DAP translation cost).
	DAPClients int
	// Duration bounds the storm phase by wall clock; Cycles bounds it
	// by stop count. At least one must be set; whichever trips first
	// ends the phase.
	Duration time.Duration
	Cycles   uint64
	// Binary/Delta select the observers' wire negotiation.
	Binary bool
	Delta  bool
	// PerSessionEncode disables shared-frame broadcast encoding on the
	// server — the measured baseline the shared path is compared to.
	PerSessionEncode bool
	// BareCycles calibrates the no-observer per-edge cost (0 = 200).
	BareCycles uint64
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

// FanoutReport is the measured result of one load run.
type FanoutReport struct {
	Observers  int    `json:"observers"`
	DAPClients int    `json:"dap_clients"`
	Encoding   string `json:"encoding"`
	Delta      bool   `json:"delta"`
	Shared     bool   `json:"shared_frames"`

	Stops       uint64  `json:"stops"`
	DurationSec float64 `json:"duration_sec"`

	// Stop-event latency from the broadcast timestamp to observer
	// receipt, across every observer and stop.
	P50LatencyMS float64 `json:"p50_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`

	// Per-edge simulator cost: one stepped cycle's wall time with the
	// controller alone (bare) vs under full fan-out (loaded).
	BareEdgeUS   float64 `json:"bare_edge_us"`
	LoadedEdgeUS float64 `json:"loaded_edge_us"`
	Slowdown     float64 `json:"slowdown_per_edge"`

	// Delivery accounting summed over every session at the end of the
	// storm (before detach).
	StopsDelivered uint64 `json:"stops_delivered"`
	Coalesced      uint64 `json:"coalesced"`
	Dropped        uint64 `json:"dropped"`
	DeltaFrames    uint64 `json:"delta_frames"`
	FullFrames     uint64 `json:"full_frames"`
	BytesOnWire    uint64 `json:"bytes_on_wire"`
	Resyncs        uint64 `json:"resyncs"`
}

// BytesPerStop is the fan-out cost figure: payload bytes on the wire
// per broadcast stop, across all sessions.
func (r *FanoutReport) BytesPerStop() float64 {
	if r.Stops == 0 {
		return 0
	}
	return float64(r.BytesOnWire) / float64(r.Stops)
}

func fanoutHereLine() int {
	var pcs [1]uintptr
	runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:1])
	f, _ := frames.Next()
	return f.Line
}

// buildFanoutServer serves a small counter design whose breakpoint
// fires every enabled clock edge — the densest possible stop storm.
func buildFanoutServer() (srv *server.Server, s *sim.Simulator, addr string, file string, line int, err error) {
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	var incLine int
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8)))
		incLine = fanoutHereLine() - 1
	})
	out.Set(count)
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		return nil, nil, "", "", 0, err
	}
	table, err := symtab.Build(comp)
	if err != nil {
		return nil, nil, "", "", 0, err
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		return nil, nil, "", "", 0, err
	}
	s = sim.New(nl)
	rt, err := core.New(vpi.NewSimBackend(s), table)
	if err != nil {
		return nil, nil, "", "", 0, err
	}
	srv = server.New(rt, nil)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, "", "", 0, err
	}
	return srv, s, addr, "fanout.go", incLine, nil
}

// fanoutObserver is one attached ws observer consuming the stop storm.
type fanoutObserver struct {
	cl   *client.Client
	sub  *client.Subscription
	done chan struct{}

	stops     atomic.Uint64
	latencies []int64 // ns, one per received stop; owned by run until done
}

func (o *fanoutObserver) run() {
	defer close(o.done)
	for ev := range o.sub.C {
		if ev.Type != "stop" {
			continue
		}
		o.stops.Add(1)
		if ev.Emit != 0 {
			o.latencies = append(o.latencies, time.Now().UnixNano()-ev.Emit)
		}
	}
}

// fanoutDAP is one DAP adapter session: the adapter end attaches to the
// hgdb server like a real editor integration; the client end initializes
// the session and then consumes (discards) the DAP event stream.
type fanoutDAP struct {
	pipe net.Conn
	done chan struct{}
}

func startFanoutDAP(addr string) (*fanoutDAP, error) {
	clientEnd, adapterEnd := net.Pipe()
	a, err := dap.New(adapterEnd, dap.Options{Addr: addr})
	if err != nil {
		clientEnd.Close()
		adapterEnd.Close()
		return nil, err
	}
	go a.Serve()
	d := &fanoutDAP{pipe: clientEnd, done: make(chan struct{})}
	conn := dap.NewConn(clientEnd)
	if _, err := conn.SendRequest("initialize", map[string]any{"adapterID": "hgdb-load"}); err != nil {
		clientEnd.Close()
		return nil, err
	}
	go func() {
		defer close(d.done)
		for {
			if _, err := conn.ReadMessage(); err != nil {
				return
			}
		}
	}()
	return d, nil
}

func (d *fanoutDAP) close() {
	d.pipe.Close()
	<-d.done
}

// RunFanout executes one load run and returns its report.
func RunFanout(opts FanoutOptions) (*FanoutReport, error) {
	if opts.Duration <= 0 && opts.Cycles == 0 {
		return nil, fmt.Errorf("fanout: need Duration or Cycles")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	srv, s, addr, file, line, err := buildFanoutServer()
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	srv.SetPerSessionEncode(opts.PerSessionEncode)

	ctrl, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer ctrl.Close()
	if _, err := ctrl.WaitEvent("welcome", 10*time.Second); err != nil {
		return nil, fmt.Errorf("fanout: controller welcome: %w", err)
	}
	if _, err := ctrl.AddBreakpoint(file, line, ""); err != nil {
		return nil, fmt.Errorf("fanout: breakpoint: %w", err)
	}

	// stepPhase steps the simulation until the cycle or duration bound
	// trips, answering every stop with a continue. The sim goroutine
	// exits only after its last continue, so every cycle is a counted
	// stop.
	stepPhase := func(cycles uint64, dur time.Duration) (uint64, time.Duration, error) {
		var stop atomic.Bool
		simDone := make(chan struct{})
		go func() {
			defer close(simDone)
			for !stop.Load() {
				s.Run(1)
			}
		}()
		var n uint64
		start := time.Now()
		for {
			if _, err := ctrl.WaitStop(30 * time.Second); err != nil {
				stop.Store(true)
				return n, time.Since(start), fmt.Errorf("fanout: lost stop after %d: %w", n, err)
			}
			n++
			if (cycles > 0 && n >= cycles) || (dur > 0 && time.Since(start) >= dur) {
				stop.Store(true)
			}
			if err := ctrl.Command("continue"); err != nil {
				return n, time.Since(start), err
			}
			if stop.Load() {
				break
			}
		}
		<-simDone
		return n, time.Since(start), nil
	}

	// Reset once, then calibrate the bare per-edge cost (controller
	// only, no fan-out).
	s.Reset("Counter.reset", 1)
	s.Poke("Counter.en", 1)
	bareCycles := opts.BareCycles
	if bareCycles == 0 {
		bareCycles = 200
	}
	bn, bd, err := stepPhase(bareCycles, 0)
	if err != nil {
		return nil, err
	}
	bareEdge := bd.Seconds() / float64(bn) * 1e6
	logf("bare: %d edges in %v (%.1f us/edge)", bn, bd.Round(time.Millisecond), bareEdge)

	// Attach the fan-out.
	observers := make([]*fanoutObserver, 0, opts.Observers)
	defer func() {
		for _, o := range observers {
			o.sub.Close()
			o.cl.Close()
			<-o.done
		}
	}()
	for i := 0; i < opts.Observers; i++ {
		cl := client.NewOpts(addr, client.Options{Binary: opts.Binary, Delta: opts.Delta})
		sub := cl.Subscribe(1024, "stop")
		if err := cl.Connect(); err != nil {
			sub.Close()
			return nil, fmt.Errorf("fanout: observer %d: %w", i, err)
		}
		if _, err := cl.WaitEvent("welcome", 10*time.Second); err != nil {
			sub.Close()
			cl.Close()
			return nil, fmt.Errorf("fanout: observer %d welcome: %w", i, err)
		}
		o := &fanoutObserver{cl: cl, sub: sub, done: make(chan struct{})}
		go o.run()
		observers = append(observers, o)
	}
	daps := make([]*fanoutDAP, 0, opts.DAPClients)
	defer func() {
		for _, d := range daps {
			d.close()
		}
	}()
	for i := 0; i < opts.DAPClients; i++ {
		d, err := startFanoutDAP(addr)
		if err != nil {
			return nil, fmt.Errorf("fanout: dap %d: %w", i, err)
		}
		daps = append(daps, d)
	}
	logf("attached %d observers, %d dap clients", len(observers), len(daps))

	// The storm.
	n, d, err := stepPhase(opts.Cycles, opts.Duration)
	if err != nil {
		return nil, err
	}
	loadedEdge := d.Seconds() / float64(n) * 1e6
	logf("storm: %d stops in %v (%.1f us/edge)", n, d.Round(time.Millisecond), loadedEdge)

	// Collect server-side session accounting before any detach tears
	// the sessions (and their counters) down.
	infos, err := ctrl.Sessions()
	if err != nil {
		return nil, fmt.Errorf("fanout: session stats: %w", err)
	}
	rep := &FanoutReport{
		Observers:    len(observers),
		DAPClients:   len(daps),
		Encoding:     "json",
		Delta:        opts.Delta,
		Shared:       !opts.PerSessionEncode,
		Stops:        n,
		DurationSec:  d.Seconds(),
		BareEdgeUS:   bareEdge,
		LoadedEdgeUS: loadedEdge,
		Slowdown:     loadedEdge / bareEdge,
	}
	if opts.Binary {
		rep.Encoding = "binary"
	}
	for _, info := range infos {
		rep.Coalesced += info.Coalesced
		rep.Dropped += info.Dropped
		rep.DeltaFrames += info.DeltaFrames
		rep.FullFrames += info.FullFrames
		rep.BytesOnWire += info.BytesSent
	}

	// Give in-flight frames a moment to land: wait until the delivered
	// count stops moving (or a deadline), then collect the tallies.
	count := func() uint64 {
		var seen uint64
		for _, o := range observers {
			seen += o.stops.Load()
		}
		return seen
	}
	deadline := time.Now().Add(5 * time.Second)
	prev := count()
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		cur := count()
		if cur == prev {
			break
		}
		prev = cur
	}
	var lats []int64
	for _, o := range observers {
		o.sub.Close()
		o.cl.Close()
		<-o.done
		rep.StopsDelivered += o.stops.Load()
		lats = append(lats, o.latencies...)
		rep.Resyncs += o.cl.Resyncs()
	}
	observers = observers[:0]
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.P50LatencyMS = float64(lats[len(lats)/2]) / 1e6
		rep.P99LatencyMS = float64(lats[len(lats)*99/100]) / 1e6
	}
	return rep, nil
}

// PrintFanout renders one report as the hgdb-load text table.
func PrintFanout(w interface{ Write([]byte) (int, error) }, r *FanoutReport) {
	fmt.Fprintf(w, "broadcast fan-out: %d observers + %d dap, %s frames, delta=%v, shared=%v\n",
		r.Observers, r.DAPClients, r.Encoding, r.Delta, r.Shared)
	fmt.Fprintf(w, "  stops            %d in %.2fs\n", r.Stops, r.DurationSec)
	fmt.Fprintf(w, "  stop latency     p50 %.2f ms   p99 %.2f ms\n", r.P50LatencyMS, r.P99LatencyMS)
	fmt.Fprintf(w, "  per-edge cost    bare %.1f us → loaded %.1f us (%.2fx slowdown)\n",
		r.BareEdgeUS, r.LoadedEdgeUS, r.Slowdown)
	fmt.Fprintf(w, "  delivery         %d delivered, %d coalesced, %d dropped, %d resyncs\n",
		r.StopsDelivered, r.Coalesced, r.Dropped, r.Resyncs)
	fmt.Fprintf(w, "  encoding split   %d delta / %d full frames\n", r.DeltaFrames, r.FullFrames)
	fmt.Fprintf(w, "  bytes on wire    %d (%.0f B/stop across the fan-out)\n",
		r.BytesOnWire, r.BytesPerStop())
}
