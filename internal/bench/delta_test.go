package bench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/riscv"
	"repro/internal/vpi"
)

// This file pins the activity-driven scheduler to exhaustive
// re-evaluation over the real Figure 5 machines: for randomized
// breakpoint sets on RISC-V workloads, delta scheduling must produce
// the identical stop sequence — times, locations, hit instances, frame
// values — as evaluating every group at every clock edge.

// xorshift is the deterministic rng for breakpoint-set selection.
func xorshift(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
}

// bpChoice describes one randomized arming decision, derived from the
// symbol table (identical across machines of the same workload).
type bpChoice struct {
	file     string
	line     int
	instance string // empty: all instances
	cond     string // empty: unconditional
}

// chooseBreakpoints derives a deterministic random breakpoint set from
// the machine's symbol table.
func chooseBreakpoints(m *riscv.Machine, rnd func() uint64, n int) []bpChoice {
	type loc struct {
		file string
		line int
	}
	var locs []loc
	for _, f := range m.Table.Files() {
		for _, l := range m.Table.Lines(f) {
			locs = append(locs, loc{f, l})
		}
	}
	var out []bpChoice
	for i := 0; i < n && len(locs) > 0; i++ {
		pick := locs[rnd()%uint64(len(locs))]
		c := bpChoice{file: pick.file, line: pick.line}
		bps := m.Table.BreakpointsAt(pick.file, pick.line)
		if len(bps) == 0 {
			continue
		}
		// A third of the picks get a user condition on a scoped
		// variable, another third are instance-scoped.
		switch rnd() % 3 {
		case 0:
			if vars := m.Table.ScopeVars(bps[0].ID); len(vars) > 0 {
				v := vars[rnd()%uint64(len(vars))]
				c.cond = fmt.Sprintf("%s %% %d == %d", v.Name, 5+rnd()%11, rnd()%4)
			}
		case 1:
			c.instance = bps[rnd()%uint64(len(bps))].InstanceName
		}
		out = append(out, c)
	}
	return out
}

// runStops executes one workload with the chosen breakpoints under one
// scheduling mode and returns the stop-sequence signatures plus the
// runtime (for activity stats). Stops are capped so unconditional
// breakpoints on hot lines stay affordable; the cap cuts both modes at
// the same stop index, so comparisons stay exact.
func runStops(t *testing.T, w *riscv.Workload, choices []bpChoice, exhaustive bool) ([]string, *core.Runtime) {
	t.Helper()
	return runStopsWith(t, w, choices, func(rt *core.Runtime) { rt.SetExhaustiveEval(exhaustive) })
}

// runStopsWith is the configurable form: the callback picks the
// scheduling mode (exhaustive / per-group / fused) before arming.
func runStopsWith(t *testing.T, w *riscv.Workload, choices []bpChoice, configure func(*core.Runtime)) ([]string, *core.Runtime) {
	t.Helper()
	nCores := 1
	if w.MT {
		nCores = 2
	}
	m, err := riscv.NewMachine(nCores, false)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(vpi.NewSimBackend(m.Sim), m.Table)
	if err != nil {
		t.Fatal(err)
	}
	configure(rt)
	armed := 0
	for _, c := range choices {
		if c.instance != "" {
			if _, err := rt.AddBreakpointInstance(c.file, c.line, c.instance, c.cond); err == nil {
				armed++
			}
			continue
		}
		if _, err := rt.AddBreakpoint(c.file, c.line, c.cond); err == nil {
			armed++
		}
	}
	if armed == 0 {
		t.Fatalf("no breakpoint of %d choices armed", len(choices))
	}
	const stopCap = 3000
	var stops []string
	rt.SetHandler(func(ev *core.StopEvent) core.Command {
		sig := fmt.Sprintf("t=%d %s:%d rev=%v step=%v", ev.Time, ev.File, ev.Line, ev.Reverse, ev.StepStop)
		for _, th := range ev.Threads {
			sig += fmt.Sprintf(" [%s#%d", th.Instance, th.BreakpointID)
			for _, v := range th.Locals {
				sig += fmt.Sprintf(" %s=%d/%v/%s", v.Name, v.Value, v.Unknown, v.Display())
			}
			sig += "]"
		}
		for _, wh := range ev.Watch {
			sig += fmt.Sprintf(" w%d:%d->%d/%s->%s", wh.ID, wh.Old, wh.New, wh.OldDisplay, wh.NewDisplay)
		}
		stops = append(stops, sig)
		if len(stops) >= stopCap {
			return core.CmdDetach
		}
		return core.CmdContinue
	})
	for i := range m.Cores {
		if err := m.Load(i, w.Prog); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(w.MaxCycles); err != nil {
		t.Fatal(err)
	}
	return stops, rt
}

// TestDeltaStopEquivalenceRISCV is the acceptance differential: over
// randomized breakpoint sets on the RISC-V workloads, delta scheduling
// and exhaustive evaluation produce identical stop sequences; and on
// the idle-core workload the delta scheduler demonstrably skips work.
func TestDeltaStopEquivalenceRISCV(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs")
	}
	byName := workloadsByName()
	for _, tc := range []struct {
		workload string
		seed     uint64
		rounds   int
	}{
		{"towers", 0x9E3779B97F4A7C15, 2},
		{"vvadd", 0xBF58476D1CE4E5B9, 1},
		{"mt-idle", 0x94D049BB133111EB, 2},
	} {
		ws := byName[tc.workload]
		if len(ws) == 0 {
			t.Fatalf("workload %s missing", tc.workload)
		}
		w := ws[0]
		rnd := xorshift(tc.seed)
		for round := 0; round < tc.rounds; round++ {
			t.Run(fmt.Sprintf("%s/round%d", tc.workload, round), func(t *testing.T) {
				// Derive choices from a throwaway machine's table (the
				// table is identical for every machine of a workload).
				probe, err := riscv.NewMachine(map[bool]int{true: 2, false: 1}[w.MT], false)
				if err != nil {
					t.Fatal(err)
				}
				choices := chooseBreakpoints(probe, rnd, 6)
				exhaustive, _ := runStops(t, w, choices, true)
				delta, rt := runStops(t, w, choices, false)
				if len(delta) != len(exhaustive) {
					t.Fatalf("stop counts differ: delta=%d exhaustive=%d", len(delta), len(exhaustive))
				}
				for i := range delta {
					if delta[i] != exhaustive[i] {
						t.Fatalf("stop %d differs:\ndelta:      %s\nexhaustive: %s", i, delta[i], exhaustive[i])
					}
				}
				skipped, evaluated, _ := rt.ActivityStats()
				t.Logf("%s round %d: %d stops, delta skipped=%d evaluated=%d",
					tc.workload, round, len(delta), skipped, evaluated)
				if tc.workload == "mt-idle" && skipped == 0 && len(exhaustive) > 0 {
					t.Error("idle-core workload skipped nothing")
				}
			})
		}
	}
}
