package bench

import (
	"testing"
)

// TestRunFanoutSmoke keeps the load harness itself under tier-1 test:
// a short storm against a modest fan-out must produce a coherent
// report — every stop delivered somewhere, bytes on the wire, sane
// latency ordering.
func TestRunFanoutSmoke(t *testing.T) {
	rep, err := RunFanout(FanoutOptions{
		Observers:  25,
		DAPClients: 2,
		Cycles:     20,
		Binary:     true,
		Delta:      true,
		BareCycles: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stops != 20 {
		t.Fatalf("stops = %d, want 20", rep.Stops)
	}
	if rep.StopsDelivered == 0 {
		t.Fatal("no stops delivered to any observer")
	}
	if rep.BytesOnWire == 0 {
		t.Fatal("no bytes on wire")
	}
	if rep.P99LatencyMS < rep.P50LatencyMS {
		t.Fatalf("p99 %.3fms < p50 %.3fms", rep.P99LatencyMS, rep.P50LatencyMS)
	}
	if rep.Resyncs != 0 {
		t.Fatalf("%d delta resyncs in a 20-stop storm", rep.Resyncs)
	}
	t.Logf("smoke: p50=%.2fms p99=%.2fms slowdown=%.2fx bytes/stop=%.0f delta/full=%d/%d",
		rep.P50LatencyMS, rep.P99LatencyMS, rep.Slowdown,
		rep.BytesPerStop(), rep.DeltaFrames, rep.FullFrames)
}

// BenchmarkBroadcastFanout measures the broadcast path at 1k observers
// against a live sim, one stepped stop per iteration. Sub-benchmarks
// cover the shared encode-once path (JSON and binary+delta) and the
// per-session-encode baseline; bytes-on-wire per stop and p99 latency
// are reported as custom metrics. Compare shared vs baseline for the
// encode-once win; see DESIGN.md for reference numbers.
func BenchmarkBroadcastFanout(b *testing.B) {
	observers := 1000
	if testing.Short() {
		observers = 100
	}
	for _, cfg := range []struct {
		name             string
		binary, delta    bool
		perSessionEncode bool
	}{
		{"shared-json", false, false, false},
		{"shared-binary-delta", true, true, false},
		{"baseline-per-session", false, false, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			rep, err := RunFanout(FanoutOptions{
				Observers:        observers,
				Cycles:           uint64(b.N),
				Binary:           cfg.binary,
				Delta:            cfg.delta,
				PerSessionEncode: cfg.perSessionEncode,
				BareCycles:       50,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.BytesPerStop(), "wire-B/stop")
			b.ReportMetric(rep.P99LatencyMS, "p99-ms")
			b.ReportMetric(rep.Slowdown, "edge-slowdown")
			b.ReportMetric(float64(rep.Coalesced)/float64(rep.Stops), "coalesced/stop")
		})
	}
}
