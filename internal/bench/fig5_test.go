package bench

import (
	"strings"
	"testing"

	"repro/internal/riscv"
)

func TestRunWorkloadValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload run")
	}
	// Smallest workload; all four configurations must produce the same
	// validated execution.
	var target = "towers"
	for _, cfg := range []Config{Baseline, BaselineHgdb, Debug, DebugHgdb} {
		found := false
		for _, w := range workloadsByName()[target] {
			secs, res, err := RunWorkload(w, cfg, 1)
			if err != nil {
				t.Fatalf("%s under %v: %v", target, cfg, err)
			}
			if secs <= 0 || !res.Halted {
				t.Fatalf("%s under %v: secs=%f halted=%v", target, cfg, secs, res.Halted)
			}
			found = true
		}
		if !found {
			t.Fatalf("workload %s missing", target)
		}
	}
}

func TestConfigStrings(t *testing.T) {
	for cfg, want := range map[Config]string{
		Baseline: "baseline", BaselineHgdb: "baseline+hgdb",
		Debug: "debug", DebugHgdb: "debug+hgdb",
	} {
		if cfg.String() != want {
			t.Errorf("%d.String() = %s", int(cfg), cfg)
		}
	}
}

func TestRowMath(t *testing.T) {
	r := Row{Workload: "x"}
	r.Seconds[Baseline] = 2
	r.Seconds[BaselineHgdb] = 2.1
	r.Seconds[Debug] = 3
	r.Seconds[DebugHgdb] = 3.3
	if got := r.Normalized(Debug); got != 1.5 {
		t.Fatalf("normalized debug = %f", got)
	}
	if got := r.HgdbOverhead(false); got < 0.049 || got > 0.051 {
		t.Fatalf("base overhead = %f", got)
	}
	if got := r.HgdbOverhead(true); got < 0.099 || got > 0.101 {
		t.Fatalf("debug overhead = %f", got)
	}
	var zero Row
	if zero.Normalized(Debug) != 0 || zero.HgdbOverhead(false) != 0 {
		t.Fatal("zero row math not guarded")
	}
}

func TestSymtabSizesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two SoCs")
	}
	st, err := SymtabSizes()
	if err != nil {
		t.Fatal(err)
	}
	// The §4.1 shape: debug mode never shrinks anything, and the
	// generated netlist grows substantially (paper: ≈30%).
	if st.DbgRows < st.OptRows {
		t.Fatalf("debug rows %d < optimized %d", st.DbgRows, st.OptRows)
	}
	if st.DbgVars <= st.OptVars {
		t.Fatalf("debug vars %d <= optimized %d", st.DbgVars, st.OptVars)
	}
	growth := float64(st.DbgSignals)/float64(st.OptSignals) - 1
	if growth < 0.10 {
		t.Fatalf("netlist growth %.2f below expected shape", growth)
	}
}

func TestPrintFig5Format(t *testing.T) {
	rows := []Row{{Workload: "demo", Cycles: 100, CPIMilli: 1001}}
	rows[0].Seconds[Baseline] = 1
	rows[0].Seconds[BaselineHgdb] = 1.01
	rows[0].Seconds[Debug] = 1.3
	rows[0].Seconds[DebugHgdb] = 1.31
	var sb strings.Builder
	PrintFig5(&sb, rows)
	out := sb.String()
	for _, want := range []string{"workload", "demo", "1.00", "1.30", "1.001"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// workloadsByName indexes the registered workloads.
func workloadsByName() map[string][]*riscv.Workload {
	out := map[string][]*riscv.Workload{}
	for _, w := range riscv.Workloads() {
		out[w.Name] = append(out[w.Name], w)
	}
	return out
}
