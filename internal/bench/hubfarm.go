package bench

// Hub farm load harness: one in-process debug hub hosting N runtimes
// (alternating live counter simulations and replay sessions over one
// shared trace fixture), each driven through a breakpoint storm by its
// own controller while M observers per runtime consume the stop
// broadcast. Reports per-runtime and aggregate p50/p99 stop latency
// plus the shared symbol-table cache's hit accounting — the number
// that shows the farm loads one table, not N. Used by
// cmd/hgdb-load -runtimes and the hub CI soak.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/hub"
	"repro/internal/proto"
	"repro/internal/vcd"
)

// HubFarmOptions configures one farm run.
type HubFarmOptions struct {
	// Runtimes is the number of concurrent runtimes on the hub; even
	// indices launch live sims, odd indices replay a shared fixture.
	Runtimes int
	// Observers is the observer session count per runtime (each
	// runtime additionally gets one controller driving the storm).
	Observers int
	// Duration bounds each runtime's storm phase by wall clock.
	Duration time.Duration
	// Binary/Delta select the observers' wire negotiation.
	Binary bool
	Delta  bool
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

// HubRuntimeReport is one runtime's measured storm.
type HubRuntimeReport struct {
	ID           string  `json:"id"`
	Kind         string  `json:"kind"`
	Stops        uint64  `json:"stops"`
	P50LatencyMS float64 `json:"p50_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
}

// HubFarmReport is the measured result of one farm run.
type HubFarmReport struct {
	Runtimes            int     `json:"runtimes"`
	ObserversPerRuntime int     `json:"observers_per_runtime"`
	DurationSec         float64 `json:"duration_sec"`

	TotalStops   uint64  `json:"total_stops"`
	P50LatencyMS float64 `json:"p50_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`

	// Shared symbol-table cache accounting: every replay runtime after
	// the first should be a hit.
	SymtabHits   uint64 `json:"symtab_hits"`
	SymtabMisses uint64 `json:"symtab_misses"`
	SymtabLive   int    `json:"symtab_live"`

	PerRuntime []HubRuntimeReport `json:"per_runtime"`
}

// recordFarmFixture records the counter design into dir and returns
// the trace and symbol-table paths every replay runtime shares.
func recordFarmFixture(dir string) (vcdPath, symtabPath string, err error) {
	srv, s, _, _, _, err := buildFanoutServer()
	if err != nil {
		return "", "", err
	}
	defer srv.Close()
	vcdPath = filepath.Join(dir, "farm.vcd")
	vf, err := os.Create(vcdPath)
	if err != nil {
		return "", "", err
	}
	rec := vcd.NewRecorder(s, vf)
	s.Reset("Counter.reset", 1)
	s.Poke("Counter.en", 1)
	s.Run(64)
	if err := rec.Flush(); err != nil {
		return "", "", err
	}
	if err := vf.Close(); err != nil {
		return "", "", err
	}
	symtabPath = filepath.Join(dir, "farm.symtab")
	sf, err := os.Create(symtabPath)
	if err != nil {
		return "", "", err
	}
	if err := srv.Runtime().Table().Save(sf); err != nil {
		return "", "", err
	}
	return vcdPath, symtabPath, sf.Close()
}

// discoverBreakLine asks a runtime session for any breakable file:line
// through the info surface — the farm does not know which design each
// runtime serves.
func discoverBreakLine(cl *client.Client) (string, int, error) {
	raw, err := cl.Info("files", "")
	if err != nil {
		return "", 0, err
	}
	var files []string
	if err := json.Unmarshal(raw, &files); err != nil || len(files) == 0 {
		return "", 0, fmt.Errorf("no breakable files (%s)", raw)
	}
	raw, err = cl.Info("lines", files[0])
	if err != nil {
		return "", 0, err
	}
	var lines []int
	if err := json.Unmarshal(raw, &lines); err != nil || len(lines) == 0 {
		return "", 0, fmt.Errorf("no breakable lines in %s (%s)", files[0], raw)
	}
	return files[0], lines[0], nil
}

func latencyPercentiles(lats []int64) (p50, p99 float64) {
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return float64(lats[len(lats)/2]) / 1e6, float64(lats[len(lats)*99/100]) / 1e6
}

// RunHubFarm executes one farm run and returns its report.
func RunHubFarm(opts HubFarmOptions) (*HubFarmReport, error) {
	if opts.Runtimes <= 0 {
		return nil, fmt.Errorf("hubfarm: need Runtimes > 0")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("hubfarm: need Duration")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	h := hub.New(hub.Options{})
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer h.Close()

	dir, err := os.MkdirTemp("", "hgdb-farm-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	vcdPath, symtabPath, err := recordFarmFixture(dir)
	if err != nil {
		return nil, fmt.Errorf("hubfarm: fixture: %w", err)
	}

	infos := make([]proto.RuntimeInfo, opts.Runtimes)
	for i := range infos {
		spec := proto.RuntimeSpec{Name: fmt.Sprintf("farm-%d", i), Kind: "sim", Design: "counter"}
		if i%2 == 1 {
			spec = proto.RuntimeSpec{Name: spec.Name, Kind: "replay", VCD: vcdPath, Symtab: symtabPath}
		}
		info, err := h.Launch(spec)
		if err != nil {
			return nil, fmt.Errorf("hubfarm: launch %s: %w", spec.Name, err)
		}
		infos[i] = info
	}
	logf("launched %d runtimes on %s", len(infos), addr)

	// Each runtime's storm runs on its own worker: a controller arms a
	// discovered breakpoint and answers stops with continues while the
	// observers time the broadcast.
	reports := make([]HubRuntimeReport, len(infos))
	stamps := make([][]int64, len(infos))
	errs := make([]error, len(infos))
	var wg sync.WaitGroup
	for i, info := range infos {
		wg.Add(1)
		go func(i int, info proto.RuntimeInfo) {
			defer wg.Done()
			reports[i], stamps[i], errs[i] = runFarmRuntime(addr, info, opts)
		}(i, info)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("hubfarm: runtime %s: %w", infos[i].ID, err)
		}
	}

	stats := h.SymtabStats()
	rep := &HubFarmReport{
		Runtimes:            opts.Runtimes,
		ObserversPerRuntime: opts.Observers,
		DurationSec:         opts.Duration.Seconds(),
		SymtabHits:          stats.Hits,
		SymtabMisses:        stats.Misses,
		SymtabLive:          stats.Live,
		PerRuntime:          reports,
	}
	// Aggregate percentiles re-merge every runtime's raw stamps;
	// averaging the per-runtime percentiles would flatten the tails.
	var all []int64
	for i, r := range reports {
		rep.TotalStops += r.Stops
		all = append(all, stamps[i]...)
	}
	rep.P50LatencyMS, rep.P99LatencyMS = latencyPercentiles(all)
	return rep, nil
}

// runFarmRuntime drives one runtime's storm and measures it,
// returning the raw latency stamps for the caller's aggregate merge.
func runFarmRuntime(addr string, info proto.RuntimeInfo, opts HubFarmOptions) (HubRuntimeReport, []int64, error) {
	rep := HubRuntimeReport{ID: info.ID, Kind: info.Kind}

	ctrl, err := client.DialOpts(addr, client.Options{Runtime: info.ID})
	if err != nil {
		return rep, nil, err
	}
	defer ctrl.Close()
	if _, err := ctrl.WaitEvent("welcome", 10*time.Second); err != nil {
		return rep, nil, fmt.Errorf("controller welcome: %w", err)
	}
	file, line, err := discoverBreakLine(ctrl)
	if err != nil {
		return rep, nil, err
	}

	observers := make([]*fanoutObserver, 0, opts.Observers)
	defer func() {
		for _, o := range observers {
			o.sub.Close()
			o.cl.Close()
			<-o.done
		}
	}()
	for i := 0; i < opts.Observers; i++ {
		cl := client.NewOpts(addr, client.Options{
			Runtime: info.ID, Binary: opts.Binary, Delta: opts.Delta,
		})
		sub := cl.Subscribe(1024, "stop")
		if err := cl.Connect(); err != nil {
			sub.Close()
			return rep, nil, fmt.Errorf("observer %d: %w", i, err)
		}
		if _, err := cl.WaitEvent("welcome", 10*time.Second); err != nil {
			sub.Close()
			cl.Close()
			return rep, nil, fmt.Errorf("observer %d welcome: %w", i, err)
		}
		o := &fanoutObserver{cl: cl, sub: sub, done: make(chan struct{})}
		go o.run()
		observers = append(observers, o)
	}

	if _, err := ctrl.AddBreakpoint(file, line, ""); err != nil {
		return rep, nil, fmt.Errorf("breakpoint %s:%d: %w", file, line, err)
	}
	deadline := time.Now().Add(opts.Duration)
	for {
		if _, err := ctrl.WaitStop(30 * time.Second); err != nil {
			return rep, nil, fmt.Errorf("lost stop after %d: %w", rep.Stops, err)
		}
		rep.Stops++
		if time.Now().After(deadline) {
			// Disarm before the final continue so the hub's drive loop
			// runs free again once the storm ends.
			if err := ctrl.ClearBreakpoints(); err != nil {
				return rep, nil, err
			}
			if err := ctrl.Command("continue"); err != nil {
				return rep, nil, err
			}
			break
		}
		if err := ctrl.Command("continue"); err != nil {
			return rep, nil, err
		}
	}

	// Let in-flight frames land, then fold the observers' stamps.
	time.Sleep(100 * time.Millisecond)
	var lats []int64
	for _, o := range observers {
		o.sub.Close()
		o.cl.Close()
		<-o.done
		lats = append(lats, o.latencies...)
	}
	observers = observers[:0]
	rep.P50LatencyMS, rep.P99LatencyMS = latencyPercentiles(append([]int64(nil), lats...))
	return rep, lats, nil
}

// PrintHubFarm renders one report as the hgdb-load text table.
func PrintHubFarm(w interface{ Write([]byte) (int, error) }, r *HubFarmReport) {
	fmt.Fprintf(w, "hub farm: %d runtimes × %d observers, %.1fs storm each\n",
		r.Runtimes, r.ObserversPerRuntime, r.DurationSec)
	fmt.Fprintf(w, "  stops            %d total\n", r.TotalStops)
	fmt.Fprintf(w, "  stop latency     p50 %.2f ms   p99 %.2f ms (aggregate)\n",
		r.P50LatencyMS, r.P99LatencyMS)
	fmt.Fprintf(w, "  symtab cache     %d hits / %d misses, %d live table(s)\n",
		r.SymtabHits, r.SymtabMisses, r.SymtabLive)
	for _, rt := range r.PerRuntime {
		fmt.Fprintf(w, "  %-10s %-7s %6d stops   p50 %.2f ms   p99 %.2f ms\n",
			rt.ID, rt.Kind, rt.Stops, rt.P50LatencyMS, rt.P99LatencyMS)
	}
}
