package ws

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// scriptConn is a net.Conn whose read side replays a captured byte
// script and whose write side discards — the harness the frame-parser
// fuzzer runs the connection against.
type scriptConn struct {
	r io.Reader
}

func (s *scriptConn) Read(p []byte) (int, error)       { return s.r.Read(p) }
func (s *scriptConn) Write(p []byte) (int, error)      { return len(p), nil }
func (s *scriptConn) Close() error                     { return nil }
func (s *scriptConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (s *scriptConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (s *scriptConn) SetDeadline(time.Time) error      { return nil }
func (s *scriptConn) SetReadDeadline(time.Time) error  { return nil }
func (s *scriptConn) SetWriteDeadline(time.Time) error { return nil }

// scriptedConn builds a Conn of the given role whose incoming bytes
// are exactly data.
func scriptedConn(data []byte, client bool) *Conn {
	sc := &scriptConn{r: bytes.NewReader(data)}
	return newConn(sc, bufio.NewReader(sc), client)
}

// capture runs fn against a conn whose writes are recorded, returning
// the bytes the conn put on the wire. Used to seed the corpus with
// real traffic produced by our own encoder.
type captureConn struct {
	scriptConn
	buf bytes.Buffer
}

func (c *captureConn) Write(p []byte) (int, error) { return c.buf.Write(p) }

func captureFrames(client bool, fn func(*Conn)) []byte {
	cc := &captureConn{}
	conn := newConn(cc, bufio.NewReader(cc), client)
	fn(conn)
	return cc.buf.Bytes()
}

// FuzzReadFrame throws arbitrary byte streams at the frame parser in
// both roles. The invariants: no panic, no runaway allocation (payload
// growth is bounded by bytes actually received), and every returned
// message respects the protocol limits.
func FuzzReadFrame(f *testing.F) {
	// Seed with real traffic from our own encoder: the messages the
	// debug protocol actually exchanges, at every length encoding, plus
	// control frames and torn prefixes.
	seeds := [][]byte{
		captureFrames(true, func(c *Conn) { // masked client traffic
			c.WriteText([]byte(`{"type":"breakpoint","action":"add","filename":"adder.go","line":41,"token":"1"}`))
			c.WriteText([]byte(`{"type":"command","command":"continue","token":"2"}`))
			c.WriteText([]byte(`{"type":"session","action":"list","token":"3"}`))
			c.Ping([]byte("keepalive"))
			c.WriteText(bytes.Repeat([]byte("x"), 200))    // 16-bit length
			c.WriteText(bytes.Repeat([]byte("y"), 70_000)) // 64-bit length
			c.writeFrame(opClose, nil)
		}),
		captureFrames(false, func(c *Conn) { // unmasked server traffic
			c.WriteText([]byte(`{"type":"welcome","session":1,"role":"controller","top":"Counter"}`))
			c.WriteText([]byte(`{"type":"stop","stop":{"time":3,"file":"adder.go","line":41}}`))
			c.writeFrame(opPong, []byte("keepalive"))
			c.writeFrame(opClose, nil)
		}),
		{0x81},                         // torn header
		{0x81, 0xFE, 0xFF},             // torn 16-bit length
		{0x81, 0xFF, 0xFF, 0xFF, 0xFF}, // torn 64-bit length
		{0x81, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, // 16 EiB claim
		{0x01, 0x80, 1, 2, 3, 4},                                     // fragmented (FIN clear)
		{0xF1, 0x80, 1, 2, 3, 4},                                     // reserved bits set
		{0x88, 0xFE, 0x00, 0x7E},                                     // oversized control frame
		{0x89, 0x85, 1, 2, 3, 4, 0, 0, 0, 0, 0},                      // masked ping
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, role := range []bool{false, true} {
			conn := scriptedConn(data, role)
			for i := 0; i < 64; i++ {
				msg, err := conn.ReadText()
				if err != nil {
					break
				}
				if len(msg) > maxPayload {
					t.Fatalf("message of %d bytes exceeds maxPayload", len(msg))
				}
			}
		}
	})
}
