package ws

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func startEchoServer(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			t.Errorf("upgrade: %v", err)
			return
		}
		go func() {
			defer conn.Close()
			for {
				msg, err := conn.ReadText()
				if err != nil {
					return
				}
				if err := conn.WriteText(msg); err != nil {
					return
				}
			}
		}()
	}))
	t.Cleanup(srv.Close)
	return "ws://" + strings.TrimPrefix(srv.URL, "http://")
}

func TestEchoRoundTrip(t *testing.T) {
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	for _, msg := range []string{"hello", "{\"type\":\"breakpoint\"}", ""} {
		if err := conn.WriteText([]byte(msg)); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := conn.ReadText()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if string(got) != msg {
			t.Fatalf("echo = %q, want %q", got, msg)
		}
	}
}

func TestLargeMessage(t *testing.T) {
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Exercise both the 126 (16-bit) and 127 (64-bit) length encodings.
	for _, size := range []int{200, 70_000} {
		big := strings.Repeat("x", size)
		if err := conn.WriteText([]byte(big)); err != nil {
			t.Fatal(err)
		}
		got, err := conn.ReadText()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != size {
			t.Fatalf("size %d echoed as %d", size, len(got))
		}
	}
}

func TestCloseHandshake(t *testing.T) {
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := conn.WriteText([]byte("after close")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestAcceptKey(t *testing.T) {
	// RFC 6455 §1.3 worked example.
	got := acceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("acceptKey = %q, want %q", got, want)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("http://example.com"); err == nil {
		t.Fatal("non-ws scheme accepted")
	}
	if _, err := Dial("ws://127.0.0.1:1"); err == nil {
		t.Fatal("unreachable host accepted")
	}
}

func TestUpgradeRejectsPlainRequest(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Error("plain request upgraded")
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestPingPong(t *testing.T) {
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a ping directly; the peer must answer with a pong, and our
	// next ReadText must skip it transparently after an echo.
	if err := conn.writeFrame(opPing, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteText([]byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := conn.ReadText()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Fatalf("got %q", got)
	}
}
