package ws

import (
	"bufio"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func startEchoServer(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			t.Errorf("upgrade: %v", err)
			return
		}
		go func() {
			defer conn.Close()
			for {
				msg, err := conn.ReadText()
				if err != nil {
					return
				}
				if err := conn.WriteText(msg); err != nil {
					return
				}
			}
		}()
	}))
	t.Cleanup(srv.Close)
	return "ws://" + strings.TrimPrefix(srv.URL, "http://")
}

func TestEchoRoundTrip(t *testing.T) {
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	for _, msg := range []string{"hello", "{\"type\":\"breakpoint\"}", ""} {
		if err := conn.WriteText([]byte(msg)); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := conn.ReadText()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if string(got) != msg {
			t.Fatalf("echo = %q, want %q", got, msg)
		}
	}
}

func TestLargeMessage(t *testing.T) {
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Exercise both the 126 (16-bit) and 127 (64-bit) length encodings.
	for _, size := range []int{200, 70_000} {
		big := strings.Repeat("x", size)
		if err := conn.WriteText([]byte(big)); err != nil {
			t.Fatal(err)
		}
		got, err := conn.ReadText()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != size {
			t.Fatalf("size %d echoed as %d", size, len(got))
		}
	}
}

func TestCloseHandshake(t *testing.T) {
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := conn.WriteText([]byte("after close")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestAcceptKey(t *testing.T) {
	// RFC 6455 §1.3 worked example.
	got := acceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("acceptKey = %q, want %q", got, want)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("http://example.com"); err == nil {
		t.Fatal("non-ws scheme accepted")
	}
	if _, err := Dial("ws://127.0.0.1:1"); err == nil {
		t.Fatal("unreachable host accepted")
	}
}

func TestUpgradeRejectsPlainRequest(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Error("plain request upgraded")
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// startStalledServer performs the WebSocket handshake and then goes
// silent: it never reads another byte and never answers the close
// handshake. Returns the ws URL and a counter of accepted conns.
func startStalledServer(t *testing.T) (string, *atomic.Int32) {
	t.Helper()
	var accepted atomic.Int32
	hold := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			t.Errorf("upgrade: %v", err)
			return
		}
		accepted.Add(1)
		go func() {
			<-hold // hold the conn open, reading nothing
			conn.Close()
		}()
	}))
	t.Cleanup(func() { close(hold); srv.Close() })
	return "ws://" + strings.TrimPrefix(srv.URL, "http://"), &accepted
}

func TestCloseDeadlineStalledPeer(t *testing.T) {
	url, _ := startStalledServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetCloseTimeout(200 * time.Millisecond)
	start := time.Now()
	if err := conn.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %s against a stalled peer", elapsed)
	}
}

func TestCloseDeadlineWithConcurrentReader(t *testing.T) {
	url, _ := startStalledServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetCloseTimeout(200 * time.Millisecond)
	readerDone := make(chan error, 1)
	go func() {
		_, err := conn.ReadText()
		readerDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the reader block
	start := time.Now()
	if err := conn.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %s with a silent peer", elapsed)
	}
	select {
	case <-readerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("reader still blocked after Close")
	}
}

func TestWriteDeadlineWedgedPeer(t *testing.T) {
	url, _ := startStalledServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetWriteTimeout(200 * time.Millisecond)
	conn.SetCloseTimeout(200 * time.Millisecond)
	// The peer never reads: keep writing until the TCP buffers fill and
	// the deadline fires. Bound the whole attempt so a missing deadline
	// fails the test instead of hanging it.
	errs := make(chan error, 1)
	go func() {
		payload := make([]byte, 1<<20)
		for i := 0; i < 256; i++ {
			if err := conn.WriteText(payload); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("256 MiB written into a peer that reads nothing")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("write into wedged peer never timed out")
	}
}

func TestMaskEnforcement(t *testing.T) {
	// A server-role conn must reject unmasked frames.
	cl, sv := net.Pipe()
	defer cl.Close()
	go func() {
		// Raw unmasked text frame "hi" (what a compromised client that
		// skips masking would send).
		cl.Write([]byte{0x81, 0x02, 'h', 'i'})
	}()
	srvConn := newConn(sv, bufio.NewReader(sv), false)
	if _, err := srvConn.ReadText(); err == nil {
		t.Fatal("unmasked client frame accepted")
	}
}

func TestControlFrameTooLong(t *testing.T) {
	cl, sv := net.Pipe()
	defer cl.Close()
	go func() {
		// Masked ping claiming a 126-byte payload: control frames are
		// capped at 125.
		cl.Write([]byte{0x89, 0xFE, 0x00, 0x7E})
	}()
	srvConn := newConn(sv, bufio.NewReader(sv), false)
	if _, err := srvConn.ReadText(); err == nil {
		t.Fatal("oversized control frame accepted")
	}
}

func TestPingKeepalive(t *testing.T) {
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping([]byte("keepalive")); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := conn.Ping(make([]byte, 126)); err == nil {
		t.Fatal("oversized ping accepted")
	}
	// The echo peer answers the ping transparently; a following message
	// still round-trips.
	if err := conn.WriteText([]byte("after-ping")); err != nil {
		t.Fatal(err)
	}
	got, err := conn.ReadText()
	if err != nil || string(got) != "after-ping" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestPingPong(t *testing.T) {
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a ping directly; the peer must answer with a pong, and our
	// next ReadText must skip it transparently after an echo.
	if err := conn.writeFrame(opPing, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteText([]byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := conn.ReadText()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Fatalf("got %q", got)
	}
}

func TestCloseWhileReaderBetweenReads(t *testing.T) {
	// A persistent read loop is momentarily "inactive" between
	// ReadText calls; Close must still coordinate with it instead of
	// reading the stream from a second goroutine.
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetCloseTimeout(500 * time.Millisecond)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			if _, err := conn.ReadText(); err != nil {
				return
			}
			time.Sleep(50 * time.Millisecond) // gap between reads
		}
	}()
	conn.WriteText([]byte("tick"))
	time.Sleep(75 * time.Millisecond) // land inside the reader's gap
	if err := conn.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-readerDone:
	case <-time.After(3 * time.Second):
		t.Fatal("reader never unblocked after Close")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	// An echo server that mirrors opcodes: binary frames come back
	// binary, text frames come back text.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			t.Errorf("upgrade: %v", err)
			return
		}
		go func() {
			defer conn.Close()
			for {
				op, msg, err := conn.ReadMessage()
				if err != nil {
					return
				}
				if op == BinaryMessage {
					err = conn.WriteBinary(msg)
				} else {
					err = conn.WriteText(msg)
				}
				if err != nil {
					return
				}
			}
		}()
	}))
	defer srv.Close()
	conn, err := Dial("ws://" + strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	bin := []byte{0xB5, 0x01, 0x00, 0xFF, 0x80, 0x7F}
	if err := conn.WriteBinary(bin); err != nil {
		t.Fatal(err)
	}
	op, got, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != BinaryMessage {
		t.Fatalf("opcode = %#x, want binary", op)
	}
	if string(got) != string(bin) {
		t.Fatalf("binary echo = %x, want %x", got, bin)
	}
	// Text still round-trips through ReadMessage with the text opcode.
	if err := conn.WriteText([]byte("json")); err != nil {
		t.Fatal(err)
	}
	op, got, err = conn.ReadMessage()
	if err != nil || op != TextMessage || string(got) != "json" {
		t.Fatalf("text via ReadMessage = %#x %q %v", op, got, err)
	}
	// A text-only reader must reject a binary frame rather than hand
	// opaque bytes to a JSON decoder.
	if err := conn.WriteBinary(bin); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ReadText(); err == nil {
		t.Fatal("ReadText accepted a binary frame")
	}
}

func TestWireByteCounters(t *testing.T) {
	url := startEchoServer(t)
	conn, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte("0123456789") // 10 bytes, small-frame encoding
	if err := conn.WriteText(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ReadText(); err != nil {
		t.Fatal(err)
	}
	// Client frame: 2 header + 4 mask + 10 payload.
	if got := conn.BytesWritten(); got != 16 {
		t.Fatalf("BytesWritten = %d, want 16", got)
	}
	// Server echo: 2 header + 10 payload (unmasked).
	if got := conn.BytesRead(); got != 12 {
		t.Fatalf("BytesRead = %d, want 12", got)
	}
}
