// Package ws is a minimal RFC 6455 WebSocket implementation (stdlib
// only) sufficient for the hgdb debugging protocol: text frames, close
// handshake, ping/pong. The paper's debuggers connect to the runtime
// over WebSocket, "similar to the gdb remote protocol" (§3.5).
//
// Limitations (by design, documented): no fragmentation (FIN must be
// set), no extensions, text and control frames only, payloads up to
// 16 MiB.
package ws

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
)

// guid is the protocol-mandated accept-key suffix.
const guid = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// maxPayload guards against absurd frames.
const maxPayload = 16 << 20

// ErrClosed is returned after the close handshake completes.
var ErrClosed = errors.New("ws: connection closed")

const (
	opText  = 0x1
	opClose = 0x8
	opPing  = 0x9
	opPong  = 0xA
)

// Conn is one WebSocket connection.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // clients mask outgoing frames
	wmu    sync.Mutex
	closed bool
}

// acceptKey computes the Sec-WebSocket-Accept header value.
func acceptKey(key string) string {
	h := sha1.Sum([]byte(key + guid))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Upgrade hijacks an HTTP request and performs the server-side
// handshake.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		return nil, fmt.Errorf("ws: not a websocket upgrade request")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return nil, fmt.Errorf("ws: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return nil, fmt.Errorf("ws: response writer does not support hijacking")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, err
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := rw.Write([]byte(resp)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return &Conn{conn: conn, br: rw.Reader}, nil
}

// Dial connects to a ws:// URL of the form ws://host:port/path.
func Dial(url string) (*Conn, error) {
	rest, ok := strings.CutPrefix(url, "ws://")
	if !ok {
		return nil, fmt.Errorf("ws: unsupported url %q (want ws://)", url)
	}
	host := rest
	path := "/"
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		host, path = rest[:i], rest[i:]
	}
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\n"+
		"Connection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n",
		path, host, key)
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: "GET"})
	if err != nil {
		conn.Close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake failed: %s", resp.Status)
	}
	if resp.Header.Get("Sec-WebSocket-Accept") != acceptKey(key) {
		conn.Close()
		return nil, fmt.Errorf("ws: bad accept key")
	}
	return &Conn{conn: conn, br: br, client: true}, nil
}

// WriteText sends one text message.
func (c *Conn) WriteText(payload []byte) error {
	return c.writeFrame(opText, payload)
}

func (c *Conn) writeFrame(op byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed && op != opClose {
		return ErrClosed
	}
	var hdr [14]byte
	hdr[0] = 0x80 | op // FIN set
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(payload)))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		copy(hdr[n:n+4], mask[:])
		n += 4
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ mask[i%4]
		}
		payload = masked
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

// ReadText reads the next text message, transparently answering pings
// and completing the close handshake.
func (c *Conn) ReadText() ([]byte, error) {
	for {
		op, payload, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch op {
		case opText:
			return payload, nil
		case opPing:
			if err := c.writeFrame(opPong, payload); err != nil {
				return nil, err
			}
		case opPong:
			// ignore
		case opClose:
			c.writeFrame(opClose, payload)
			c.closed = true
			c.conn.Close()
			return nil, ErrClosed
		default:
			return nil, fmt.Errorf("ws: unsupported opcode %#x", op)
		}
	}
}

func (c *Conn) readFrame() (byte, []byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	fin := hdr[0]&0x80 != 0
	op := hdr[0] & 0x0F
	if !fin {
		return 0, nil, fmt.Errorf("ws: fragmented frames not supported")
	}
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > maxPayload {
		return 0, nil, fmt.Errorf("ws: frame of %d bytes exceeds limit", length)
	}
	var mask [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, mask[:]); err != nil {
			return 0, nil, err
		}
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return op, payload, nil
}

// Close performs the close handshake from this side.
func (c *Conn) Close() error {
	c.wmu.Lock()
	alreadyClosed := c.closed
	c.closed = true
	c.wmu.Unlock()
	if alreadyClosed {
		return nil
	}
	c.writeFrameUnlocked(opClose, nil)
	return c.conn.Close()
}

func (c *Conn) writeFrameUnlocked(op byte, payload []byte) {
	// close frames are best-effort
	var hdr [2]byte
	hdr[0] = 0x80 | op
	hdr[1] = byte(len(payload))
	c.conn.Write(hdr[:])
	c.conn.Write(payload)
}
