// Package ws is a minimal RFC 6455 WebSocket implementation (stdlib
// only) sufficient for the hgdb debugging protocol: text frames, close
// handshake, ping/pong. The paper's debuggers connect to the runtime
// over WebSocket, "similar to the gdb remote protocol" (§3.5).
//
// Connections are hardened for the multi-session server: every frame
// write carries a deadline, the close handshake is bounded (a peer
// that never answers cannot block Close forever), and Ping lets a
// writer goroutine keep the link alive. One goroutine may read while
// another writes; reads themselves must stay on a single goroutine.
//
// Limitations (by design, documented): no fragmentation (FIN must be
// set), no extensions, text/binary and control frames only, payloads
// up to 16 MiB.
package ws

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// guid is the protocol-mandated accept-key suffix.
const guid = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// maxPayload guards against absurd frames.
const maxPayload = 16 << 20

// maxControlPayload is the RFC 6455 §5.5 limit for control frames.
const maxControlPayload = 125

// payloadChunk bounds the allocation made before any payload byte has
// arrived, so a malicious header claiming a 16 MiB frame cannot force
// a 16 MiB allocation up front.
const payloadChunk = 64 << 10

// defaultCloseTimeout bounds the close handshake: how long Close waits
// for the peer's answering close frame before tearing the socket down.
const defaultCloseTimeout = 5 * time.Second

// ErrClosed is returned after the close handshake completes.
var ErrClosed = errors.New("ws: connection closed")

const (
	opText   = 0x1
	opBinary = 0x2
	opClose  = 0x8
	opPing   = 0x9
	opPong   = 0xA
)

// Message opcodes returned by ReadMessage.
const (
	// TextMessage is a UTF-8 text frame (the JSON protocol).
	TextMessage = opText
	// BinaryMessage is a binary frame (the length-prefixed broadcast
	// encoding negotiated at attach).
	BinaryMessage = opBinary
)

// Conn is one WebSocket connection.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // clients mask outgoing frames
	wmu    sync.Mutex
	closed bool

	// writeTimeout is applied as a deadline to every frame write
	// (0 = none); closeTimeout bounds the close handshake. Set both
	// before the connection is shared across goroutines.
	writeTimeout time.Duration
	closeTimeout time.Duration

	// rmu serializes all frame reads: the (single) reader goroutine
	// holds it across each ReadText, and Close's self-drain of the
	// close handshake takes it too — so the shared bufio.Reader is
	// never touched from two goroutines at once, even in the window
	// between a read loop's iterations.
	rmu sync.Mutex
	// closeAcked closes when a reader finishes the stream — peer's
	// close frame consumed, or a terminal read error. Close waits on
	// it instead of sleeping out its timeout on a dead connection.
	closeAcked chan struct{}
	ackOnce    sync.Once

	// bytesRead/bytesWritten count wire bytes (headers + payloads) for
	// the load harness's bytes-on-wire report.
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
}

// BytesRead reports the wire bytes consumed by this connection's frame
// reader (frame headers included).
func (c *Conn) BytesRead() uint64 { return c.bytesRead.Load() }

// BytesWritten reports the wire bytes produced by this connection's
// frame writer (frame headers included).
func (c *Conn) BytesWritten() uint64 { return c.bytesWritten.Load() }

func newConn(nc net.Conn, br *bufio.Reader, client bool) *Conn {
	return &Conn{
		conn:         nc,
		br:           br,
		client:       client,
		closeTimeout: defaultCloseTimeout,
		closeAcked:   make(chan struct{}),
	}
}

// SetWriteTimeout bounds every subsequent frame write (including
// pings and broadcast events): a peer that stopped reading makes the
// write fail with a timeout instead of blocking the writer forever.
// Call before sharing the connection across goroutines.
func (c *Conn) SetWriteTimeout(d time.Duration) { c.writeTimeout = d }

// SetCloseTimeout bounds the close handshake performed by Close. Call
// before sharing the connection across goroutines.
func (c *Conn) SetCloseTimeout(d time.Duration) { c.closeTimeout = d }

// acceptKey computes the Sec-WebSocket-Accept header value.
func acceptKey(key string) string {
	h := sha1.Sum([]byte(key + guid))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Upgrade hijacks an HTTP request and performs the server-side
// handshake.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		return nil, fmt.Errorf("ws: not a websocket upgrade request")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return nil, fmt.Errorf("ws: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return nil, fmt.Errorf("ws: response writer does not support hijacking")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, err
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := rw.Write([]byte(resp)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return newConn(conn, rw.Reader, false), nil
}

// Dial connects to a ws:// URL of the form ws://host:port/path.
func Dial(url string) (*Conn, error) {
	rest, ok := strings.CutPrefix(url, "ws://")
	if !ok {
		return nil, fmt.Errorf("ws: unsupported url %q (want ws://)", url)
	}
	host := rest
	path := "/"
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		host, path = rest[:i], rest[i:]
	}
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\n"+
		"Connection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n",
		path, host, key)
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: "GET"})
	if err != nil {
		conn.Close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake failed: %s", resp.Status)
	}
	if resp.Header.Get("Sec-WebSocket-Accept") != acceptKey(key) {
		conn.Close()
		return nil, fmt.Errorf("ws: bad accept key")
	}
	return newConn(conn, br, true), nil
}

// WriteText sends one text message.
func (c *Conn) WriteText(payload []byte) error {
	return c.writeFrame(opText, payload)
}

// WriteBinary sends one binary message.
func (c *Conn) WriteBinary(payload []byte) error {
	return c.writeFrame(opBinary, payload)
}

// Ping sends a ping control frame (payload ≤ 125 bytes). The peer's
// pong is consumed transparently by its ReadText loop.
func (c *Conn) Ping(payload []byte) error {
	if len(payload) > maxControlPayload {
		return fmt.Errorf("ws: ping payload of %d bytes exceeds %d", len(payload), maxControlPayload)
	}
	return c.writeFrame(opPing, payload)
}

func (c *Conn) writeFrame(op byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed && op != opClose {
		return ErrClosed
	}
	return c.writeFrameLocked(op, payload)
}

// writeFrameLocked encodes and writes one frame. Callers hold wmu.
func (c *Conn) writeFrameLocked(op byte, payload []byte) error {
	if c.writeTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	var hdr [14]byte
	hdr[0] = 0x80 | op // FIN set
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(payload)))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		copy(hdr[n:n+4], mask[:])
		n += 4
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ mask[i%4]
		}
		payload = masked
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := c.conn.Write(payload); err != nil {
		return err
	}
	c.bytesWritten.Add(uint64(n + len(payload)))
	return nil
}

// ReadText reads the next text message, transparently answering pings
// and completing the close handshake. A binary frame is a protocol
// error here — callers that negotiated the binary encoding must use
// ReadMessage. At most one goroutine may read at a time.
func (c *Conn) ReadText() ([]byte, error) {
	op, payload, err := c.ReadMessage()
	if err != nil {
		return nil, err
	}
	if op != opText {
		return nil, fmt.Errorf("ws: unexpected binary frame on a text-only reader")
	}
	return payload, nil
}

// ReadMessage reads the next text or binary message, transparently
// answering pings and completing the close handshake. The returned
// opcode is TextMessage or BinaryMessage. At most one goroutine may
// read at a time.
func (c *Conn) ReadMessage() (byte, []byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	op, msg, err := c.readMessageLocked()
	if err != nil {
		// The stream is finished (close handshake or terminal error):
		// release anyone waiting in Close immediately.
		c.ackOnce.Do(func() { close(c.closeAcked) })
	}
	return op, msg, err
}

func (c *Conn) readMessageLocked() (byte, []byte, error) {
	for {
		op, payload, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case opText, opBinary:
			return op, payload, nil
		case opPing:
			if err := c.writeFrame(opPong, payload); err != nil && !errors.Is(err, ErrClosed) {
				return 0, nil, err
			}
		case opPong:
			// ignore
		case opClose:
			c.wmu.Lock()
			if !c.closed {
				c.closed = true
				// Answer the peer's close; best-effort and bounded.
				c.conn.SetWriteDeadline(time.Now().Add(c.closeTimeout))
				c.writeFrameLocked(opClose, payload)
			}
			c.wmu.Unlock()
			c.conn.Close()
			return 0, nil, ErrClosed
		default:
			return 0, nil, fmt.Errorf("ws: unsupported opcode %#x", op)
		}
	}
}

func (c *Conn) readFrame() (byte, []byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	fin := hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return 0, nil, fmt.Errorf("ws: reserved bits set without a negotiated extension")
	}
	op := hdr[0] & 0x0F
	if !fin {
		return 0, nil, fmt.Errorf("ws: fragmented frames not supported")
	}
	masked := hdr[1]&0x80 != 0
	// RFC 6455 §5.1: client→server frames must be masked, server→client
	// frames must not be. Enforcing this rejects misbehaving peers (and
	// reflected plaintext attacks) early.
	if masked == c.client {
		if masked {
			return 0, nil, fmt.Errorf("ws: server sent a masked frame")
		}
		return 0, nil, fmt.Errorf("ws: client sent an unmasked frame")
	}
	length := uint64(hdr[1] & 0x7F)
	if op >= opClose && length > maxControlPayload {
		return 0, nil, fmt.Errorf("ws: control frame payload of %d bytes exceeds %d", length, maxControlPayload)
	}
	wire := uint64(2) // frame header bytes consumed so far
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
		wire += 2
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
		wire += 8
	}
	if length > maxPayload {
		return 0, nil, fmt.Errorf("ws: frame of %d bytes exceeds limit", length)
	}
	var mask [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, mask[:]); err != nil {
			return 0, nil, err
		}
		wire += 4
	}
	payload, err := c.readPayload(length)
	if err != nil {
		return 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	c.bytesRead.Add(wire + length)
	return op, payload, nil
}

// readPayload reads a frame body, growing the buffer chunk by chunk so
// the allocation tracks bytes actually received rather than the length
// the header claims.
func (c *Conn) readPayload(length uint64) ([]byte, error) {
	if length <= payloadChunk {
		payload := make([]byte, length)
		if _, err := io.ReadFull(c.br, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	payload := make([]byte, 0, payloadChunk)
	for uint64(len(payload)) < length {
		n := length - uint64(len(payload))
		if n > payloadChunk {
			n = payloadChunk
		}
		start := len(payload)
		payload = append(payload, zeroChunk[:n]...)
		if _, err := io.ReadFull(c.br, payload[start:]); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// zeroChunk extends the payload buffer chunk by chunk without
// allocating a fresh zeroed slice per chunk.
var zeroChunk [payloadChunk]byte

// Close performs the close handshake from this side: it sends a close
// frame, waits up to the close timeout for the peer's answer (consumed
// here, or by a concurrent ReadText loop), then tears the socket down.
// A peer that never answers — or never drains its receive buffer —
// cannot block Close beyond the timeout.
func (c *Conn) Close() error {
	c.wmu.Lock()
	if c.closed {
		c.wmu.Unlock()
		return nil
	}
	c.closed = true
	// The close frame write is bounded even when no write timeout is
	// configured: a wedged peer must not stall the handshake's first
	// half either.
	c.conn.SetWriteDeadline(time.Now().Add(c.closeTimeout))
	c.writeFrameLocked(opClose, nil)
	c.wmu.Unlock()

	deadline := time.Now().Add(c.closeTimeout)
	if c.rmu.TryLock() {
		// No reader active: consume the ack ourselves, bounded by a
		// read deadline so a silent peer cannot wedge us. Holding rmu
		// blocks a reader that re-enters meanwhile; it will fail its
		// next read once the socket is torn down below.
		c.conn.SetReadDeadline(deadline)
		for {
			op, _, err := c.readFrame()
			if err != nil || op == opClose {
				break
			}
		}
		defer c.rmu.Unlock()
	} else {
		// A reader goroutine owns the stream; it will consume the
		// peer's close frame and signal, or the timeout fires.
		select {
		case <-c.closeAcked:
		case <-time.After(time.Until(deadline)):
		}
	}
	// A reader that consumed the close ack already tore the socket
	// down; that is a completed handshake, not an error.
	if err := c.conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
