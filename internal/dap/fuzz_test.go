package dap

import (
	"bufio"
	"bytes"

	"testing"
)

// FuzzReadMessage hammers the Content-Length frame parser — the one
// piece of this package that consumes attacker-controlled bytes before
// any JSON validation. The corpus is seeded with the traffic a real
// conformance session produces (see seedSession) plus the hostile
// shapes from the table tests. Invariants: no panic, no oversized
// allocation (the parser caps bodies at MaxContentLength), decoded
// bodies re-frame bit-identically, and after any error the parser
// stops (no infinite loop on a poisoned stream).
func FuzzReadMessage(f *testing.F) {
	for _, body := range seedSession() {
		var buf bytes.Buffer
		WriteMessage(&buf, []byte(body))
		f.Add(buf.Bytes())
	}
	var all bytes.Buffer
	for _, body := range seedSession() {
		WriteMessage(&all, []byte(body))
	}
	f.Add(all.Bytes())
	f.Add([]byte("Content-Length: 5\r\n\r\nhello"))
	f.Add([]byte("Content-Length: -1\r\n\r\n"))
	f.Add([]byte("Content-Length: 99999999999999999999\r\n\r\n"))
	f.Add([]byte("Content-Type: json\r\n\r\n{}"))
	f.Add([]byte("Content-Length 5\r\n\r\nhello"))
	f.Add([]byte("content-length:0\n\ncontent-length:2\n\nhi"))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			body, err := ReadMessage(br)
			if err != nil {
				return // any error terminates the stream; that's the contract
			}
			if len(body) > MaxContentLength {
				t.Fatalf("parser returned %d bytes, above its own cap", len(body))
			}
			// Re-framing a decoded body must parse back identically.
			var rt bytes.Buffer
			if err := WriteMessage(&rt, body); err != nil {
				t.Fatal(err)
			}
			back, err := ReadMessage(bufio.NewReader(&rt))
			if err != nil || !bytes.Equal(back, body) {
				t.Fatalf("round trip broke: err=%v, %d bytes vs %d", err, len(back), len(body))
			}
		}
	})
}

// seedSession is the message traffic of a full DAP conformance run,
// captured from the adapter's own session shape: the same init →
// break → inspect → step → disconnect transcript the harness drives.
func seedSession() []string {
	return []string{
		`{"seq":1,"type":"request","command":"initialize","arguments":{"adapterID":"hgdb","linesStartAt1":true}}`,
		`{"seq":1,"type":"response","request_seq":1,"success":true,"command":"initialize","body":{"supportsConfigurationDoneRequest":true,"supportsStepBack":true}}`,
		`{"seq":2,"type":"request","command":"attach","arguments":{}}`,
		`{"seq":3,"type":"event","event":"initialized"}`,
		`{"seq":4,"type":"request","command":"setBreakpoints","arguments":{"source":{"path":"design.go"},"breakpoints":[{"line":42},{"line":43,"condition":"count > 2"}]}}`,
		`{"seq":5,"type":"response","request_seq":4,"success":true,"command":"setBreakpoints","body":{"breakpoints":[{"id":1,"verified":true,"line":42},{"verified":false,"line":43,"message":"no breakable statement"}]}}`,
		`{"seq":6,"type":"request","command":"configurationDone"}`,
		`{"seq":7,"type":"event","event":"stopped","body":{"reason":"breakpoint","threadId":1,"allThreadsStopped":true,"hitBreakpointIds":[1]}}`,
		`{"seq":8,"type":"request","command":"threads"}`,
		`{"seq":9,"type":"request","command":"stackTrace","arguments":{"threadId":1}}`,
		`{"seq":10,"type":"request","command":"scopes","arguments":{"frameId":1}}`,
		`{"seq":11,"type":"request","command":"variables","arguments":{"variablesReference":1}}`,
		`{"seq":12,"type":"request","command":"evaluate","arguments":{"expression":"count + 1","frameId":1}}`,
		`{"seq":13,"type":"request","command":"next","arguments":{"threadId":1}}`,
		`{"seq":14,"type":"request","command":"stepBack","arguments":{"threadId":1}}`,
		`{"seq":15,"type":"request","command":"reverseContinue","arguments":{"threadId":1}}`,
		`{"seq":16,"type":"request","command":"continue","arguments":{"threadId":1}}`,
		`{"seq":17,"type":"event","event":"continued","body":{"allThreadsContinued":true}}`,
		`{"seq":18,"type":"request","command":"disconnect"}`,
		`{"seq":19,"type":"event","event":"terminated"}`,
		"",
	}
}
