package dap

import (
	"bytes"
	"encoding/json"
	"net"
	goruntime "runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/replay"
	"repro/internal/rtl"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

// This file is the DAP conformance harness: scripted protocol sessions
// over an in-memory pipe against a real hgdb server, on both backends.
// The sim scenario drives initialize → attach → setBreakpoints (with
// symtab-verified and rejected lines) → configurationDone →
// stopped(breakpoint) → threads → stackTrace → scopes → variables
// (structured child expansion) → evaluate → next → continue →
// disconnect; the replay scenario adds stepBack and reverseContinue
// behind supportsStepBack. Stop times and frame contents are compared
// against the same script run through internal/client directly.

func hereLine() int {
	var pcs [1]uintptr
	goruntime.Callers(2, pcs[:])
	f, _ := goruntime.CallersFrames(pcs[:1]).Next()
	return f.Line
}

// buildDualCoreBundle is the harness design: two instances of one Core
// (so a stop presents two Fig-4 threads) whose output port is a bundle
// (so DAP variable expansion exercises §4.2 structure reconstruction).
func buildDualCoreBundle(t *testing.T) (*sim.Simulator, *symtab.Table, int) {
	t.Helper()
	c := generator.NewCircuit("Top")
	coreMod := c.NewModule("Core")
	d := coreMod.Input("d", ir.UIntType(8))
	io := coreMod.Output("io", ir.Bundle{Fields: []ir.Field{
		{Name: "bits", Type: ir.UIntType(8)},
		{Name: "valid", Type: ir.UIntType(1)},
	}})
	acc := coreMod.RegInit("acc", ir.UIntType(8), coreMod.Lit(0, 8))
	var accLine int
	coreMod.When(d.Bit(0), func() {
		acc.Set(acc.AddMod(d))
		accLine = hereLine() - 1
	})
	io.Field("bits").Set(acc)
	io.Field("valid").Set(d.Bit(0))

	top := c.NewModule("Top")
	x := top.Input("x", ir.UIntType(8))
	y := top.Output("y", ir.UIntType(8))
	u0 := top.Instance("u0", coreMod)
	u1 := top.Instance("u1", coreMod)
	u0.IO("d").Set(x)
	u1.IO("d").Set(x) // same input -> both cores hit together
	y.Set(u0.IO("io").Field("bits").AddMod(u1.IO("io").Field("bits")))

	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(nl), table, accLine
}

// startSimServer serves the dual-core design from a live simulator.
func startSimServer(t *testing.T) (string, *sim.Simulator, int) {
	t.Helper()
	s, table, accLine := buildDualCoreBundle(t)
	rt, err := core.New(vpi.NewSimBackend(s), table)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(rt, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, s, accLine
}

// recordTrace runs the dual-core design forward and returns its VCD
// bytes plus the (re-loadable) symbol table and breakpoint line.
func recordTrace(t *testing.T, cycles int) ([]byte, *symtab.Table, int) {
	t.Helper()
	s, table, accLine := buildDualCoreBundle(t)
	var buf bytes.Buffer
	rec := vcd.NewRecorder(s, &buf)
	s.Reset("Top.reset", 1)
	s.Poke("Top.x", 3) // odd -> both cores accumulate every cycle
	s.Run(cycles)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), table, accLine
}

// startReplayServer serves a recorded trace through the checkpointed
// block-store engine and returns a driver that replays it forward.
func startReplayServer(t *testing.T, trace []byte, table *symtab.Table) (string, *replay.Engine) {
	t.Helper()
	store, err := vcd.ParseStore(bytes.NewReader(trace), vcd.StoreOptions{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := replay.NewStore(store, replay.WithCheckpointInterval(4))
	rt, err := core.New(eng, table)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(rt, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, eng
}

// dapClient is the scripted DAP peer: it talks to an in-process
// adapter over a net.Pipe, matching responses to requests and queueing
// interleaved events.
type dapClient struct {
	t      *testing.T
	pipe   net.Conn
	conn   *Conn
	events []*Message
}

// newDAPSession wires an adapter (attached to the hgdb server at addr)
// to an in-memory pipe and returns the scripted client side.
func newDAPSession(t *testing.T, addr string) *dapClient {
	t.Helper()
	clientEnd, adapterEnd := net.Pipe()
	ad, err := New(adapterEnd, Options{Addr: addr})
	if err != nil {
		t.Fatalf("adapter attach: %v", err)
	}
	go ad.Serve()
	t.Cleanup(func() { clientEnd.Close(); adapterEnd.Close() })
	return &dapClient{t: t, pipe: clientEnd, conn: NewConn(clientEnd)}
}

func (d *dapClient) read() *Message {
	d.t.Helper()
	d.pipe.SetReadDeadline(time.Now().Add(10 * time.Second))
	m, err := d.conn.ReadMessage()
	if err != nil {
		d.t.Fatalf("dap read: %v", err)
	}
	return m
}

// request sends a request and returns its (successful) response,
// queueing any events that arrive first.
func (d *dapClient) request(command string, args any) *Message {
	d.t.Helper()
	seq, err := d.conn.SendRequest(command, args)
	if err != nil {
		d.t.Fatalf("send %s: %v", command, err)
	}
	for {
		m := d.read()
		if m.Type == "event" {
			d.events = append(d.events, m)
			continue
		}
		if m.Type != "response" || m.RequestSeq != seq {
			d.t.Fatalf("unexpected message answering %s: %+v", command, m)
		}
		if !m.Success {
			d.t.Fatalf("%s failed: %s", command, m.Msg)
		}
		return m
	}
}

// requestFail sends a request that must be rejected.
func (d *dapClient) requestFail(command string, args any) *Message {
	d.t.Helper()
	seq, err := d.conn.SendRequest(command, args)
	if err != nil {
		d.t.Fatalf("send %s: %v", command, err)
	}
	for {
		m := d.read()
		if m.Type == "event" {
			d.events = append(d.events, m)
			continue
		}
		if m.Type != "response" || m.RequestSeq != seq {
			d.t.Fatalf("unexpected message answering %s: %+v", command, m)
		}
		if m.Success {
			d.t.Fatalf("%s unexpectedly succeeded", command)
		}
		return m
	}
}

// event returns the next event of the given name, consuming queued
// events first.
func (d *dapClient) event(name string) *Message {
	d.t.Helper()
	for i, m := range d.events {
		if m.Event == name {
			d.events = append(d.events[:i], d.events[i+1:]...)
			return m
		}
	}
	for {
		m := d.read()
		if m.Type != "event" {
			d.t.Fatalf("wanted %s event, got %+v", name, m)
		}
		if m.Event == name {
			return m
		}
		d.events = append(d.events, m)
	}
}

// stopped waits for a stopped event and decodes it.
func (d *dapClient) stopped() StoppedEvent {
	d.t.Helper()
	m := d.event("stopped")
	var ev StoppedEvent
	if err := json.Unmarshal(m.Body, &ev); err != nil {
		d.t.Fatalf("stopped body: %v", err)
	}
	return ev
}

func decodeBody[T any](t *testing.T, m *Message) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(m.Body, &v); err != nil {
		t.Fatalf("body: %v", err)
	}
	return v
}

// threadIDByName resolves a DAP thread id from the threads request.
func (d *dapClient) threadIDByName(name string) int {
	d.t.Helper()
	resp := decodeBody[ThreadsResponse](d.t, d.request("threads", nil))
	for _, th := range resp.Threads {
		if th.Name == name {
			return th.ID
		}
	}
	d.t.Fatalf("no thread %q in %+v", name, resp.Threads)
	return 0
}

// varsByName fetches one expansion level into a name-keyed map.
func (d *dapClient) varsByName(ref int) map[string]Variable {
	d.t.Helper()
	resp := decodeBody[VariablesResponse](d.t, d.request("variables", map[string]any{"variablesReference": ref}))
	out := map[string]Variable{}
	for _, v := range resp.Variables {
		out[v.Name] = v
	}
	return out
}

// scopeRefs fetches the Locals and Generator scope references of a
// frame.
func (d *dapClient) scopeRefs(frameID int) (locals, gen int) {
	d.t.Helper()
	resp := decodeBody[ScopesResponse](d.t, d.request("scopes", map[string]any{"frameId": frameID}))
	for _, sc := range resp.Scopes {
		switch sc.Name {
		case "Locals":
			locals = sc.VariablesReference
		case "Generator":
			gen = sc.VariablesReference
		}
	}
	return locals, gen
}

// numValue parses the adapter's decimal value rendering.
func numValue(t *testing.T, v Variable) uint64 {
	t.Helper()
	n, err := strconv.ParseUint(v.Value, 10, 64)
	if err != nil {
		t.Fatalf("value %q: %v", v.Value, err)
	}
	return n
}

// referenceStops runs the breakpoint script through internal/client
// directly: arm line, record (time, u0 acc) for the first `record`
// stops, and keep continuing through any later stops until the driver
// finishes.
func referenceStops(t *testing.T, addr, file string, line int, drive func(), record int) (times, accs []uint64) {
	t.Helper()
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.WaitEvent("welcome", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AddBreakpoint(file, line, ""); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); drive() }()
	for {
		select {
		case <-done:
			if len(times) < record {
				t.Fatalf("reference run ended after %d stops, wanted %d", len(times), record)
			}
			return times, accs
		default:
		}
		stop, err := cl.WaitStop(time.Second)
		if err != nil {
			continue // poll the driver again
		}
		if len(times) < record {
			acc := uint64(0)
			for _, v := range stop.Threads[0].Locals {
				if v.Name == "acc" {
					acc = v.Value
				}
			}
			times = append(times, stop.Time)
			accs = append(accs, acc)
		}
		if err := cl.Command("continue"); err != nil {
			t.Fatalf("reference continue: %v", err)
		}
	}
}

const harnessFile = "conformance_test.go"

// TestDAPConformanceSim is the acceptance scenario on the live
// simulator backend.
func TestDAPConformanceSim(t *testing.T) {
	addr, s, accLine := startSimServer(t)
	d := newDAPSession(t, addr)

	// --- initialize: capabilities; no reverse execution on a live sim.
	caps := decodeBody[Capabilities](t, d.request("initialize",
		InitializeArguments{AdapterID: "hgdb", ClientID: "conformance"}))
	if !caps.SupportsConfigurationDoneRequest || !caps.SupportsConditionalBreakpoints {
		t.Fatalf("capabilities = %+v", caps)
	}
	if caps.SupportsStepBack {
		t.Fatal("live simulation advertised supportsStepBack")
	}

	// --- attach, then the initialized event.
	d.request("attach", AttachArguments{})
	d.event("initialized")

	// Reverse requests must be refused on this backend.
	d.requestFail("stepBack", ThreadedArguments{ThreadID: 1})

	// --- setBreakpoints: replace semantics with symtab verification.
	sb := decodeBody[SetBreakpointsResponse](t, d.request("setBreakpoints", SetBreakpointsArguments{
		Source: Source{Path: "/work/src/" + harnessFile}, // basename matching
		Breakpoints: []SourceBreakpoint{
			{Line: accLine},
			{Line: accLine + 500}, // not a statement: must be rejected
		},
	}))
	if len(sb.Breakpoints) != 2 {
		t.Fatalf("breakpoints = %+v", sb.Breakpoints)
	}
	if !sb.Breakpoints[0].Verified || sb.Breakpoints[0].ID == 0 {
		t.Fatalf("line %d not verified: %+v", accLine, sb.Breakpoints[0])
	}
	if sb.Breakpoints[1].Verified || sb.Breakpoints[1].Message == "" {
		t.Fatalf("bogus line accepted: %+v", sb.Breakpoints[1])
	}
	d.request("configurationDone", nil)

	// --- drive the simulation; both cores hit together (Fig. 4 B).
	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		s.Reset("Top.reset", 1)
		s.Poke("Top.x", 3)
		s.Run(3)
	}()

	stop := d.stopped()
	if stop.Reason != "breakpoint" || !stop.AllThreadsStopped {
		t.Fatalf("first stop = %+v", stop)
	}
	if len(stop.HitBreakpointIDs) != 2 {
		t.Fatalf("hit ids = %v, want one per core instance", stop.HitBreakpointIDs)
	}
	firstTime := stop.Time

	// --- threads: every instance is a thread; both cores are stopped.
	u0 := d.threadIDByName("Top.u0")
	u1 := d.threadIDByName("Top.u1")
	topID := d.threadIDByName("Top")

	// --- stackTrace: one generator-statement frame per hit instance.
	st := decodeBody[StackTraceResponse](t, d.request("stackTrace", ThreadedArguments{ThreadID: u0}))
	if st.TotalFrames != 1 || len(st.StackFrames) != 1 {
		t.Fatalf("u0 frames = %+v", st)
	}
	frame := st.StackFrames[0]
	if frame.Line != accLine || frame.Source == nil || frame.Source.Path != harnessFile {
		t.Fatalf("u0 frame = %+v", frame)
	}
	if st2 := decodeBody[StackTraceResponse](t, d.request("stackTrace", ThreadedArguments{ThreadID: u1})); len(st2.StackFrames) != 1 {
		t.Fatalf("u1 frames = %+v", st2)
	}
	// The enclosing Top instance did not hit: no frames.
	if st3 := decodeBody[StackTraceResponse](t, d.request("stackTrace", ThreadedArguments{ThreadID: topID})); len(st3.StackFrames) != 0 {
		t.Fatalf("Top frames = %+v", st3)
	}

	// --- scopes + variables: locals flat, generator variables with the
	// io bundle reconstructed as a structured child (§4.2).
	localsRef, genRef := d.scopeRefs(frame.ID)
	locals := d.varsByName(localsRef)
	if v, ok := locals["acc"]; !ok || numValue(t, v) != 0 {
		t.Fatalf("locals at first stop = %+v", locals)
	}
	gen := d.varsByName(genRef)
	ioVar, ok := gen["io"]
	if !ok || ioVar.VariablesReference == 0 {
		t.Fatalf("generator scope lacks a structured io bundle: %+v", gen)
	}
	ioFields := d.varsByName(ioVar.VariablesReference)
	if v, ok := ioFields["valid"]; !ok || numValue(t, v) != 1 {
		t.Fatalf("io expansion = %+v", ioFields)
	}
	if v, ok := ioFields["bits"]; !ok || numValue(t, v) != 0 {
		t.Fatalf("io.bits at first stop = %+v", ioFields)
	}

	// --- evaluate through the compiled-expression path.
	ev := decodeBody[EvaluateResponse](t, d.request("evaluate",
		EvaluateArguments{Expression: "acc + 40", FrameID: u0}))
	if ev.Result != "40" {
		t.Fatalf("evaluate = %+v", ev)
	}

	// --- next: step to the following enabled statement, same cycle.
	d.request("next", ThreadedArguments{ThreadID: u0})
	d.event("continued")
	step := d.stopped()
	if step.Reason != "step" || step.Time != firstTime {
		t.Fatalf("step stop = %+v (first stop at %d)", step, firstTime)
	}
	// The old variablesReference is dead after a resume.
	d.requestFail("variables", map[string]any{"variablesReference": localsRef})

	// --- continue: next cycle's breakpoint; acc advanced by x.
	var dapStops []struct{ time, acc uint64 }
	dapStops = append(dapStops, struct{ time, acc uint64 }{firstTime, 0})
	for {
		d.request("continue", ThreadedArguments{ThreadID: u0})
		d.event("continued")
		stop = d.stopped()
		if stop.Reason != "breakpoint" {
			t.Fatalf("continue stop = %+v", stop)
		}
		st := decodeBody[StackTraceResponse](t, d.request("stackTrace", ThreadedArguments{ThreadID: u0}))
		lRef, _ := d.scopeRefs(st.StackFrames[0].ID)
		acc := numValue(t, d.varsByName(lRef)["acc"])
		dapStops = append(dapStops, struct{ time, acc uint64 }{stop.Time, acc})
		if len(dapStops) == 3 {
			break
		}
	}
	// Last continue lets the driver finish.
	d.request("continue", ThreadedArguments{ThreadID: u0})
	select {
	case <-simDone:
	case <-time.After(10 * time.Second):
		t.Fatal("simulation did not finish")
	}

	// --- the same script through internal/client, on a fresh server,
	// must see identical stop times and frame contents.
	refAddr, refSim, _ := startSimServer(t)
	refTimes, refAccs := referenceStops(t, refAddr, harnessFile, accLine, func() {
		refSim.Reset("Top.reset", 1)
		refSim.Poke("Top.x", 3)
		refSim.Run(3)
	}, 3)
	for i := range dapStops {
		if refTimes[i] != dapStops[i].time || refAccs[i] != dapStops[i].acc {
			t.Fatalf("stop %d: reference (t=%d acc=%d) vs DAP (t=%d acc=%d)",
				i, refTimes[i], refAccs[i], dapStops[i].time, dapStops[i].acc)
		}
	}

	// --- disconnect ends the DAP session; the runtime survives.
	d.request("disconnect", nil)
	d.event("terminated")
}

// TestDAPConformanceReplay is the acceptance scenario on the replay
// backend: the same lifecycle plus reverse execution.
func TestDAPConformanceReplay(t *testing.T) {
	trace, table, accLine := recordTrace(t, 10)
	addr, eng := startReplayServer(t, trace, table)
	d := newDAPSession(t, addr)

	caps := decodeBody[Capabilities](t, d.request("initialize", InitializeArguments{AdapterID: "hgdb"}))
	if !caps.SupportsStepBack {
		t.Fatal("replay backend did not advertise supportsStepBack")
	}
	d.request("attach", AttachArguments{})
	d.event("initialized")

	sb := decodeBody[SetBreakpointsResponse](t, d.request("setBreakpoints", SetBreakpointsArguments{
		Source:      Source{Path: harnessFile},
		Breakpoints: []SourceBreakpoint{{Line: accLine}},
	}))
	if !sb.Breakpoints[0].Verified {
		t.Fatalf("breakpoint = %+v", sb.Breakpoints[0])
	}
	d.request("configurationDone", nil)

	// Replay the trace forward on a driver goroutine; stops park it.
	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		for eng.StepForward() {
		}
	}()

	// Walk two breakpoint hits forward, remembering their times.
	first := d.stopped()
	if first.Reason != "breakpoint" || len(first.HitBreakpointIDs) != 2 {
		t.Fatalf("first stop = %+v", first)
	}
	u0 := d.threadIDByName("Top.u0")
	st := decodeBody[StackTraceResponse](t, d.request("stackTrace", ThreadedArguments{ThreadID: u0}))
	lRef, _ := d.scopeRefs(st.StackFrames[0].ID)
	firstAcc := numValue(t, d.varsByName(lRef)["acc"])

	d.request("continue", ThreadedArguments{ThreadID: u0})
	d.event("continued")
	second := d.stopped()
	if second.Time <= first.Time {
		t.Fatalf("second stop at %d, first at %d", second.Time, first.Time)
	}

	// --- stepBack: reverse to the previous enabled statement.
	d.request("stepBack", ThreadedArguments{ThreadID: u0})
	d.event("continued")
	back := d.stopped()
	if back.Time > second.Time {
		t.Fatalf("stepBack went forward: %d after %d", back.Time, second.Time)
	}

	// --- reverseContinue: runs backwards until the armed breakpoint
	// hits at an earlier time.
	d.request("reverseContinue", ThreadedArguments{ThreadID: u0})
	d.event("continued")
	rev := d.stopped()
	if rev.Reason != "breakpoint" {
		t.Fatalf("reverseContinue stop = %+v", rev)
	}
	if rev.Time >= second.Time {
		t.Fatalf("reverseContinue did not move back: %d (from %d)", rev.Time, second.Time)
	}
	// Frame contents at the reverse stop match the forward visit: the
	// same source statement, and acc restored to an earlier value.
	st = decodeBody[StackTraceResponse](t, d.request("stackTrace", ThreadedArguments{ThreadID: u0}))
	if st.StackFrames[0].Line != accLine {
		t.Fatalf("reverse frame = %+v", st.StackFrames[0])
	}
	lRef, _ = d.scopeRefs(st.StackFrames[0].ID)
	revAcc := numValue(t, d.varsByName(lRef)["acc"])
	if rev.Time == first.Time && revAcc != firstAcc {
		t.Fatalf("reverse acc = %d, forward visit saw %d", revAcc, firstAcc)
	}

	// --- reference comparison: forward stop times through
	// internal/client on a fresh replay server over the same trace.
	refAddr, refEng := startReplayServer(t, trace, table)
	refTimes, refAccs := referenceStops(t, refAddr, harnessFile, accLine, func() {
		for refEng.StepForward() {
		}
	}, 2)
	if refTimes[0] != first.Time || refTimes[1] != second.Time {
		t.Fatalf("reference stop times %d,%d vs DAP %d,%d",
			refTimes[0], refTimes[1], first.Time, second.Time)
	}
	if refAccs[0] != firstAcc {
		t.Fatalf("reference acc %d vs DAP %d", refAccs[0], firstAcc)
	}

	// --- disconnect: the server auto-continues the parked replay and
	// the driver runs the trace out.
	d.request("disconnect", nil)
	d.event("terminated")
	select {
	case <-driverDone:
	case <-time.After(10 * time.Second):
		t.Fatal("replay driver stuck after disconnect")
	}
}

// TestDAPBreakpointReplaceSemantics pins the setBreakpoints diff: a
// second request for the same source replaces the previous set — old
// lines disarm, surviving lines stay armed with their ids, condition
// changes re-arm.
func TestDAPBreakpointReplaceSemantics(t *testing.T) {
	addr, s, accLine := startSimServer(t)
	d := newDAPSession(t, addr)
	d.request("initialize", InitializeArguments{})
	d.request("attach", AttachArguments{})
	d.event("initialized")

	src := Source{Path: harnessFile}
	first := decodeBody[SetBreakpointsResponse](t, d.request("setBreakpoints", SetBreakpointsArguments{
		Source:      src,
		Breakpoints: []SourceBreakpoint{{Line: accLine}},
	}))
	// Replace with a conditional breakpoint on the same line: must
	// re-arm (fresh ids) rather than keep the unconditional one.
	second := decodeBody[SetBreakpointsResponse](t, d.request("setBreakpoints", SetBreakpointsArguments{
		Source:      src,
		Breakpoints: []SourceBreakpoint{{Line: accLine, Condition: "acc > 5"}},
	}))
	if !second.Breakpoints[0].Verified {
		t.Fatalf("conditional re-arm failed: %+v", second.Breakpoints[0])
	}
	if second.Breakpoints[0].ID == 0 || first.Breakpoints[0].ID == 0 {
		t.Fatalf("missing ids: %+v %+v", first, second)
	}
	// Empty replace disarms everything: the run must not stop.
	d.request("setBreakpoints", SetBreakpointsArguments{Source: src, Breakpoints: nil})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Poke("Top.x", 3)
		s.Run(20)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run blocked: empty setBreakpoints left something armed")
	}
	d.request("disconnect", nil)
	d.event("terminated")
}

// TestDAPPause covers the asynchronous pause mapping onto hgdb's
// interrupt-at-next-statement.
func TestDAPPause(t *testing.T) {
	addr, s, _ := startSimServer(t)
	d := newDAPSession(t, addr)
	d.request("initialize", InitializeArguments{})
	d.request("attach", AttachArguments{})
	d.event("initialized")
	d.request("configurationDone", nil)

	d.request("pause", ThreadedArguments{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Poke("Top.x", 3)
		s.Run(5)
	}()
	stop := d.stopped()
	if stop.Reason != "pause" {
		t.Fatalf("pause stop reason = %q", stop.Reason)
	}
	d.request("continue", ThreadedArguments{})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("simulation stuck after pause/continue")
	}
	d.request("disconnect", nil)
	d.event("terminated")
}
