package dap

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/server"
	"repro/internal/symtab"
	"repro/internal/vcd"
)

// This file is the four-state acceptance scenario: a trace whose
// registers carry x at reset and that contains a 128-bit bus must
// round-trip VCD parse → disk store → checkpointed replay → breakpoint
// condition evaluation → DAP variable rendering, with the unknown bits
// surviving every hop and rendering as Verilog-style literals.

// fourStateTrace records the dual-core design (input poked before
// reset, so the breakpoint enable holds from the first edge) and then
// injects four-state and wide content textually: both acc registers
// dump as all-x at reset, and a 128-bit bus appears in the Top scope —
// all-x at reset, a known sparse value from t=4.
func fourStateTrace(t *testing.T) ([]byte, *symtab.Table, int) {
	t.Helper()
	s, table, accLine := buildDualCoreBundle(t)
	var buf bytes.Buffer
	rec := vcd.NewRecorder(s, &buf)
	s.Poke("Top.x", 3) // odd -> both cores enabled from the start
	s.Reset("Top.reset", 1)
	s.Run(8)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	txt := buf.String()
	xs := strings.Repeat("x", 128)
	known := "1" + strings.Repeat("0", 126) + "1"
	for _, r := range [][2]string{
		// A 128-bit bus in the Top scope (id "~" is unused by the dump).
		{"$scope module Top $end\n", "$scope module Top $end\n$var wire 128 ~ bus $end\n"},
		{"$dumpvars\n", "$dumpvars\nb" + xs + " ~\n"},
		// Both acc registers start unknown instead of zero ("+" is
		// Top.u0.acc, "3" is Top.u1.acc in the recorder's id order).
		{"b0 +\n", "bxxxxxxxx +\n"},
		{"b0 3\n", "bxxxxxxxx 3\n"},
		{"#4\n", "#4\nb" + known + " ~\n"},
	} {
		if !strings.Contains(txt, r[0]) {
			t.Fatalf("recorded trace lacks %q; recorder format changed?", r[0])
		}
		txt = strings.Replace(txt, r[0], r[1], 1)
	}
	return []byte(txt), table, accLine
}

func TestDAPFourStateEndToEnd(t *testing.T) {
	trace, table, accLine := fourStateTrace(t)

	// --- parse → disk store → reopen: the mask plane and the wide
	// signal survive the v2 disk format round trip.
	mem, err := vcd.ParseStore(bytes.NewReader(trace), vcd.StoreOptions{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	var disk bytes.Buffer
	if err := vcd.WriteStore(&disk, mem); err != nil {
		t.Fatal(err)
	}
	st, err := vcd.OpenStore(bytes.NewReader(disk.Bytes()), int64(disk.Len()), vcd.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.XZChanges == 0 {
		t.Fatal("disk store lost the x/z change statistic")
	}
	if st.Stats.MaxWidth < 128 {
		t.Fatalf("disk store MaxWidth = %d, want >= 128", st.Stats.MaxWidth)
	}

	// --- checkpointed replay + runtime + server + DAP adapter.
	eng := replay.NewStore(st, replay.WithCheckpointInterval(4))
	rt, err := core.New(eng, table)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(rt, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	d := newDAPSession(t, addr)
	d.request("initialize", InitializeArguments{AdapterID: "hgdb"})
	d.request("attach", AttachArguments{})
	d.event("initialized")

	// --- four-state condition evaluation: case equality against the
	// all-x literal holds only while acc still carries its reset x's,
	// so the breakpoint gates on genuinely unknown state.
	sb := decodeBody[SetBreakpointsResponse](t, d.request("setBreakpoints", SetBreakpointsArguments{
		Source: Source{Path: harnessFile},
		Breakpoints: []SourceBreakpoint{
			{Line: accLine, Condition: "acc === 8'bxxxxxxxx"},
		},
	}))
	if !sb.Breakpoints[0].Verified {
		t.Fatalf("four-state conditional breakpoint rejected: %+v", sb.Breakpoints[0])
	}
	d.request("configurationDone", nil)

	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		for eng.StepForward() {
		}
	}()

	stop := d.stopped()
	if stop.Reason != "breakpoint" {
		t.Fatalf("stop = %+v", stop)
	}

	// --- DAP variables: the unknown register renders as the Verilog
	// literal, not a fabricated number.
	u0 := d.threadIDByName("Top.u0")
	frames := decodeBody[StackTraceResponse](t, d.request("stackTrace", ThreadedArguments{ThreadID: u0}))
	if len(frames.StackFrames) != 1 {
		t.Fatalf("frames = %+v", frames)
	}
	lRef, _ := d.scopeRefs(frames.StackFrames[0].ID)
	locals := d.varsByName(lRef)
	acc, ok := locals["acc"]
	if !ok {
		t.Fatalf("locals = %+v", locals)
	}
	if acc.Value != "8'bxxxxxxxx" {
		t.Fatalf("acc rendered %q, want 8'bxxxxxxxx", acc.Value)
	}

	// --- evaluate over the 128-bit bus: still all-x at the stop, both
	// as a rendered literal and under wide case equality.
	ev := decodeBody[EvaluateResponse](t, d.request("evaluate",
		EvaluateArguments{Expression: "Top.bus", FrameID: u0}))
	if want := "128'b" + strings.Repeat("x", 128); ev.Result != want {
		t.Fatalf("bus rendered %q, want %q", ev.Result, want)
	}
	slice := decodeBody[EvaluateResponse](t, d.request("evaluate",
		EvaluateArguments{Expression: "Top.bus[127:120]", FrameID: u0}))
	if slice.Result != "8'bxxxxxxxx" {
		t.Fatalf("bus slice rendered %q", slice.Result)
	}
	caseEq := decodeBody[EvaluateResponse](t, d.request("evaluate",
		EvaluateArguments{Expression: "Top.bus === 128'b" + strings.Repeat("x", 128), FrameID: u0}))
	if caseEq.Result != "1" {
		t.Fatalf("wide case equality = %q, want 1", caseEq.Result)
	}

	// --- disconnect parks nothing: the server auto-continues and the
	// replay driver runs the trace out (acc leaves x, so the condition
	// stops firing).
	d.request("disconnect", nil)
	d.event("terminated")
	select {
	case <-driverDone:
	case <-time.After(10 * time.Second):
		t.Fatal("replay driver stuck after disconnect")
	}
}
