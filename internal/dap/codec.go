// Package dap adapts the Debug Adapter Protocol — the JSON protocol
// spoken by VS Code, nvim-dap, Theia and the JetBrains IDEs — onto the
// hgdb debugging protocol, so every DAP-capable editor becomes an hgdb
// front-end. The paper ships this experience as a bespoke VS Code
// extension (§3.5); speaking the standard protocol instead covers all
// editors at once, and the mapping is natural: the concurrent instances
// of one source statement that hgdb presents as threads (Figure 4 B)
// are exactly DAP's threads/stackTrace shape.
//
// The package splits into a wire codec (this file: Content-Length
// framed JSON messages with sequence management), an adapter state
// machine (adapter.go: the DAP lifecycle mapped onto internal/client),
// and a variablesReference handle table (handles.go: lazy expansion of
// core.Structure trees, the paper's §4.2 structured variables).
package dap

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

const (
	// MaxContentLength bounds one framed message body. DAP traffic is
	// small (requests, variable pages); anything larger is a corrupt or
	// hostile header, and must not become an allocation.
	MaxContentLength = 4 << 20
	// maxHeaderBytes bounds the whole header section of one message,
	// keeping a peer that never sends the blank separator line from
	// growing unbounded state.
	maxHeaderBytes = 4 << 10
)

// ReadMessage reads one Content-Length framed message body from br.
// Unknown header fields are skipped; a missing, malformed, negative or
// oversized Content-Length is an error. Clean EOF before the first
// header byte returns io.EOF; EOF anywhere later returns
// io.ErrUnexpectedEOF, so callers can tell a closed session from a
// truncated message.
func ReadMessage(br *bufio.Reader) ([]byte, error) {
	contentLen := -1
	total := 0
	first := true
	for {
		line, err := readHeaderLine(br, &total)
		if err != nil {
			if err == io.EOF && !first {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		first = false
		if line == "" {
			break
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("dap: malformed header line %q", line)
		}
		if strings.EqualFold(strings.TrimSpace(name), "content-length") {
			v := strings.TrimSpace(value)
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dap: bad Content-Length %q", v)
			}
			contentLen = n
		}
	}
	if contentLen < 0 {
		return nil, fmt.Errorf("dap: missing Content-Length header")
	}
	if contentLen > MaxContentLength {
		return nil, fmt.Errorf("dap: message of %d bytes exceeds limit %d", contentLen, MaxContentLength)
	}
	body := make([]byte, contentLen)
	if _, err := io.ReadFull(br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// readHeaderLine reads one header line, accepting both \r\n and bare
// \n terminators, charging the line against the caller's header
// budget.
func readHeaderLine(br *bufio.Reader, total *int) (string, error) {
	var b strings.Builder
	for {
		c, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && b.Len() > 0 {
				return "", io.ErrUnexpectedEOF
			}
			return "", err
		}
		*total++
		if *total > maxHeaderBytes {
			return "", fmt.Errorf("dap: header section exceeds %d bytes", maxHeaderBytes)
		}
		if c == '\n' {
			return strings.TrimSuffix(b.String(), "\r"), nil
		}
		b.WriteByte(c)
	}
}

// WriteMessage frames body with a Content-Length header and writes it
// in one Write call.
func WriteMessage(w io.Writer, body []byte) error {
	msg := make([]byte, 0, len(body)+32)
	msg = append(msg, "Content-Length: "...)
	msg = strconv.AppendInt(msg, int64(len(body)), 10)
	msg = append(msg, "\r\n\r\n"...)
	msg = append(msg, body...)
	_, err := w.Write(msg)
	return err
}

// Message is one decoded DAP protocol message (request, response or
// event); the union of the fields the adapter and its tests need.
type Message struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`

	// request
	Command   string          `json:"command,omitempty"`
	Arguments json.RawMessage `json:"arguments,omitempty"`

	// response
	RequestSeq int    `json:"request_seq,omitempty"`
	Success    bool   `json:"success,omitempty"`
	Msg        string `json:"message,omitempty"`

	// event
	Event string `json:"event,omitempty"`

	Body json.RawMessage `json:"body,omitempty"`
}

// outMessage is the write-side shape: Success is a pointer so
// responses always carry it while requests and events omit it.
type outMessage struct {
	Seq        int    `json:"seq"`
	Type       string `json:"type"`
	Command    string `json:"command,omitempty"`
	Arguments  any    `json:"arguments,omitempty"`
	RequestSeq int    `json:"request_seq,omitempty"`
	Success    *bool  `json:"success,omitempty"`
	Message    string `json:"message,omitempty"`
	Event      string `json:"event,omitempty"`
	Body       any    `json:"body,omitempty"`
}

// Conn frames DAP messages over any byte stream (stdio, TCP, an
// in-memory pipe) and owns the outbound sequence counter. Writes are
// serialized, so the adapter's event pump and request handlers may
// send concurrently.
type Conn struct {
	br  *bufio.Reader
	wmu sync.Mutex
	w   io.Writer
	seq int
}

// NewConn wraps a byte stream.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{br: bufio.NewReader(rw), w: rw}
}

// ReadMessage reads and decodes the next message.
func (c *Conn) ReadMessage() (*Message, error) {
	body, err := ReadMessage(c.br)
	if err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("dap: bad message: %w", err)
	}
	if m.Type == "" {
		return nil, fmt.Errorf("dap: message missing type")
	}
	return &m, nil
}

func (c *Conn) send(m *outMessage) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.seq++
	m.Seq = c.seq
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return WriteMessage(c.w, b)
}

// SendRequest sends a request and returns its assigned seq (used by
// DAP clients: the conformance harness and examples/dap_attach).
func (c *Conn) SendRequest(command string, args any) (int, error) {
	m := &outMessage{Type: "request", Command: command, Arguments: args}
	if err := c.send(m); err != nil {
		return 0, err
	}
	return m.Seq, nil
}

// SendEvent sends an event message.
func (c *Conn) SendEvent(event string, body any) error {
	return c.send(&outMessage{Type: "event", Event: event, Body: body})
}

// Respond sends a success response to req.
func (c *Conn) Respond(req *Message, body any) error {
	ok := true
	return c.send(&outMessage{
		Type: "response", RequestSeq: req.Seq, Command: req.Command,
		Success: &ok, Body: body,
	})
}

// RespondError sends a failure response to req.
func (c *Conn) RespondError(req *Message, format string, args ...any) error {
	notOK := false
	return c.send(&outMessage{
		Type: "response", RequestSeq: req.Seq, Command: req.Command,
		Success: &notOK, Message: fmt.Sprintf(format, args...),
	})
}
