package dap

import (
	"sync"

	"repro/internal/core"
)

// handleTable maps DAP variablesReference ints to structured-variable
// sibling lists (core.Structure trees). Expansion is lazy: a scope
// allocates one handle for its top level, and each structured child
// gets its own handle only when a variables request actually renders
// it — the §4.2 PortBundle reconstruction paid per click, not per
// stop. Per the DAP lifetime rules every reference is invalidated when
// execution resumes; reset does that, and the counter keeps rising
// across resets so a stale reference from before the resume can never
// alias a fresh object.
type handleTable struct {
	mu   sync.Mutex
	next int
	objs map[int][]core.StructuredVar
}

func newHandleTable() *handleTable {
	return &handleTable{next: 1, objs: map[int][]core.StructuredVar{}}
}

// alloc registers a sibling list and returns its reference; an empty
// list returns 0 (DAP's "no children").
func (h *handleTable) alloc(svs []core.StructuredVar) int {
	if len(svs) == 0 {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ref := h.next
	h.next++
	h.objs[ref] = svs
	return ref
}

// get resolves a reference.
func (h *handleTable) get(ref int) ([]core.StructuredVar, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	svs, ok := h.objs[ref]
	return svs, ok
}

// reset invalidates every outstanding reference (called on resume).
func (h *handleTable) reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.objs = map[int][]core.StructuredVar{}
}
