package dap

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

func frame(body string) string {
	return fmt.Sprintf("Content-Length: %d\r\n\r\n%s", len(body), body)
}

// TestReadMessageTable drives the header parser through well-formed,
// split, short and hostile inputs.
func TestReadMessageTable(t *testing.T) {
	okBody := `{"seq":1,"type":"request","command":"initialize"}`
	cases := []struct {
		name  string
		input string
		want  []string // decoded bodies, in order
		errAt int      // read index that must fail (-1: clean EOF after want)
	}{
		{"single", frame(okBody), []string{okBody}, -1},
		{"back to back", frame(okBody) + frame(`{"seq":2,"type":"request"}`),
			[]string{okBody, `{"seq":2,"type":"request"}`}, -1},
		{"extra headers skipped",
			"Content-Type: application/json\r\n" + frame(okBody), []string{okBody}, -1},
		{"case-insensitive header",
			fmt.Sprintf("content-length: %d\r\n\r\n%s", len(okBody), okBody), []string{okBody}, -1},
		{"bare lf terminators",
			fmt.Sprintf("Content-Length: %d\n\n%s", len(okBody), okBody), []string{okBody}, -1},
		{"padded value",
			fmt.Sprintf("Content-Length:   %d \r\n\r\n%s", len(okBody), okBody), []string{okBody}, -1},
		{"empty body", "Content-Length: 0\r\n\r\n" + frame(okBody), []string{"", okBody}, -1},
		{"missing content-length", "Content-Type: json\r\n\r\n{}", nil, 0},
		{"malformed header line", "Content-Length 5\r\n\r\nhello", nil, 0},
		{"negative length", "Content-Length: -1\r\n\r\n", nil, 0},
		{"non-numeric length", "Content-Length: five\r\n\r\n", nil, 0},
		{"oversized length", fmt.Sprintf("Content-Length: %d\r\n\r\n", MaxContentLength+1), nil, 0},
		{"short body", "Content-Length: 10\r\n\r\nhi", nil, 0},
		{"eof mid-header", "Content-Len", nil, 0},
		{"second message truncated", frame(okBody) + "Content-Length: 4\r\n\r\nhi", []string{okBody}, 1},
		{"huge header section", "X: " + strings.Repeat("a", maxHeaderBytes) + "\r\n\r\n", nil, 0},
	}
	for _, tc := range cases {
		for _, split := range []bool{false, true} {
			name := tc.name
			if split {
				name += " (byte-at-a-time)"
			}
			t.Run(name, func(t *testing.T) {
				var r io.Reader = strings.NewReader(tc.input)
				if split {
					r = iotest.OneByteReader(r)
				}
				br := bufio.NewReader(r)
				for i, want := range tc.want {
					got, err := ReadMessage(br)
					if err != nil {
						t.Fatalf("message %d: %v", i, err)
					}
					if string(got) != want {
						t.Fatalf("message %d = %q, want %q", i, got, want)
					}
				}
				_, err := ReadMessage(br)
				if tc.errAt >= 0 {
					if err == nil {
						t.Fatalf("read %d succeeded, want error", len(tc.want))
					}
					if err == io.EOF {
						t.Fatalf("read %d = clean EOF, want a real error", len(tc.want))
					}
				} else if err != io.EOF {
					t.Fatalf("after all messages: err = %v, want io.EOF", err)
				}
			})
		}
	}
}

// TestWriteReadRoundTrip pins the framing symmetry WriteMessage ↔
// ReadMessage, including bodies with header-looking content.
func TestWriteReadRoundTrip(t *testing.T) {
	bodies := []string{
		"", "{}", `{"seq":1,"type":"request","command":"setBreakpoints"}`,
		"Content-Length: 99\r\n\r\nnot a header",
		strings.Repeat("x", 1<<16),
	}
	var buf bytes.Buffer
	for _, b := range bodies {
		if err := WriteMessage(&buf, []byte(b)); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, want := range bodies {
		got, err := ReadMessage(br)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("message %d: round trip mismatch (%d bytes vs %d)", i, len(got), len(want))
		}
	}
}

// TestConnSeqAndShapes checks the Conn layer stamps strictly
// increasing seqs and emits spec-shaped responses (success always
// present on responses, absent on events).
func TestConnSeqAndShapes(t *testing.T) {
	var buf bytes.Buffer
	c := &Conn{w: &buf}
	if _, err := c.SendRequest("initialize", map[string]any{"adapterID": "hgdb"}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendEvent("stopped", StoppedEvent{Reason: "breakpoint"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Respond(&Message{Seq: 1, Command: "initialize"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.RespondError(&Message{Seq: 2, Command: "warp"}, "unsupported request %q", "warp"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	var msgs []string
	lastSeq := 0
	for i := 0; i < 4; i++ {
		b, err := ReadMessage(br)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		msgs = append(msgs, string(b))
		var m Message
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		if m.Seq != lastSeq+1 {
			t.Fatalf("message %d seq = %d, want %d", i, m.Seq, lastSeq+1)
		}
		lastSeq = m.Seq
	}
	if !strings.Contains(msgs[2], `"success":true`) {
		t.Fatalf("response lacks success:true: %s", msgs[2])
	}
	if !strings.Contains(msgs[3], `"success":false`) || !strings.Contains(msgs[3], "unsupported request") {
		t.Fatalf("error response malformed: %s", msgs[3])
	}
	if strings.Contains(msgs[1], "success") {
		t.Fatalf("event carries a success field: %s", msgs[1])
	}
}
