package dap

// The request/response/event body shapes the adapter speaks — the
// subset of the DAP specification this front-end implements, with the
// spec's camelCase field names.

// Capabilities is the initialize response body. SupportsStepBack is
// the reverse-execution gate: true only when the attached hgdb backend
// can travel backwards in time (replay), in which case the stepBack
// and reverseContinue requests are accepted.
type Capabilities struct {
	SupportsConfigurationDoneRequest bool `json:"supportsConfigurationDoneRequest"`
	SupportsConditionalBreakpoints   bool `json:"supportsConditionalBreakpoints"`
	SupportsEvaluateForHovers        bool `json:"supportsEvaluateForHovers"`
	SupportsStepBack                 bool `json:"supportsStepBack"`
	SupportsTerminateRequest         bool `json:"supportsTerminateRequest"`
}

// InitializeArguments is the subset of the initialize request the
// adapter honors.
type InitializeArguments struct {
	ClientID      string `json:"clientID,omitempty"`
	AdapterID     string `json:"adapterID,omitempty"`
	LinesStartAt1 *bool  `json:"linesStartAt1,omitempty"`
}

// AttachArguments carries the optional hgdb endpoint. The adapter
// dials at construction (the capability handshake needs it before
// initialize), so a non-empty Address must match the configured one;
// a mismatch fails the attach rather than debugging the wrong server.
//
// In hub mode (Options.Hub) the remaining fields select or describe a
// registry runtime: attach configurations name an existing one with
// Runtime, launch configurations carry a runtime spec (Kind defaults
// to "sim") that the adapter registers on the hub before attaching.
type AttachArguments struct {
	Address string `json:"address,omitempty"`
	// Runtime is the hub registry id to attach to (attach requests).
	Runtime string `json:"runtime,omitempty"`
	// Launch-spec fields, mirroring proto.RuntimeSpec (launch requests).
	Name   string `json:"name,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Design string `json:"design,omitempty"`
	Debug  bool   `json:"debug,omitempty"`
	VCD    string `json:"vcd,omitempty"`
	Symtab string `json:"symtab,omitempty"`
}

// CapabilitiesEventBody updates capabilities after the initialize
// handshake — hub mode binds its runtime only at launch/attach, so
// supportsStepBack is only known (and re-announced) then.
type CapabilitiesEventBody struct {
	Capabilities Capabilities `json:"capabilities"`
}

// Source identifies a generator source file.
type Source struct {
	Name string `json:"name,omitempty"`
	Path string `json:"path,omitempty"`
}

// SourceBreakpoint is one requested breakpoint within a source.
type SourceBreakpoint struct {
	Line      int    `json:"line"`
	Condition string `json:"condition,omitempty"`
}

// SetBreakpointsArguments is the setBreakpoints request body: the
// complete desired set for one source (replace semantics).
type SetBreakpointsArguments struct {
	Source      Source             `json:"source"`
	Breakpoints []SourceBreakpoint `json:"breakpoints"`
	Lines       []int              `json:"lines,omitempty"` // legacy form
}

// Breakpoint is the per-request-breakpoint verification result.
// Verified means the line is a breakable statement in the symbol table
// and the emulated breakpoints are armed; ID is the first armed hgdb
// breakpoint id.
type Breakpoint struct {
	ID       int64  `json:"id,omitempty"`
	Verified bool   `json:"verified"`
	Line     int    `json:"line,omitempty"`
	Message  string `json:"message,omitempty"`
}

// SetBreakpointsResponse mirrors the request's breakpoints in order.
type SetBreakpointsResponse struct {
	Breakpoints []Breakpoint `json:"breakpoints"`
}

// Thread is one concurrent hardware instance (paper Fig. 4 B).
type Thread struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

// ThreadsResponse lists every design instance as a thread.
type ThreadsResponse struct {
	Threads []Thread `json:"threads"`
}

// StackFrame is one reconstructed frame; hardware has exactly one
// frame per stopped instance (the generator statement).
type StackFrame struct {
	ID     int     `json:"id"`
	Name   string  `json:"name"`
	Source *Source `json:"source,omitempty"`
	Line   int     `json:"line"`
	Column int     `json:"column"`
}

// StackTraceResponse carries a thread's frames.
type StackTraceResponse struct {
	StackFrames []StackFrame `json:"stackFrames"`
	TotalFrames int          `json:"totalFrames"`
}

// Scope is one variable scope of a frame: Locals (breakpoint scope
// variables) or Generator (instance-level generator variables).
type Scope struct {
	Name               string `json:"name"`
	VariablesReference int    `json:"variablesReference"`
	NamedVariables     int    `json:"namedVariables,omitempty"`
	Expensive          bool   `json:"expensive"`
}

// ScopesResponse carries a frame's scopes.
type ScopesResponse struct {
	Scopes []Scope `json:"scopes"`
}

// Variable is one rendered variable. A non-zero VariablesReference
// marks a structured variable whose children expand with a further
// variables request (§4.2 PortBundles, lazily).
type Variable struct {
	Name               string `json:"name"`
	Value              string `json:"value"`
	Type               string `json:"type,omitempty"`
	VariablesReference int    `json:"variablesReference"`
}

// VariablesResponse carries one expansion level.
type VariablesResponse struct {
	Variables []Variable `json:"variables"`
}

// EvaluateArguments is the evaluate request body; FrameID selects the
// instance context the expression resolves in.
type EvaluateArguments struct {
	Expression string `json:"expression"`
	FrameID    int    `json:"frameId,omitempty"`
	Context    string `json:"context,omitempty"`
}

// EvaluateResponse is the evaluate result.
type EvaluateResponse struct {
	Result             string `json:"result"`
	Type               string `json:"type,omitempty"`
	VariablesReference int    `json:"variablesReference"`
}

// ThreadedArguments is the shared shape of continue/next/stepBack/
// reverseContinue/pause arguments; the simulation stops and resumes as
// a whole, so ThreadID is accepted and ignored.
type ThreadedArguments struct {
	ThreadID int `json:"threadId,omitempty"`
}

// ContinueResponse tells the client every thread resumed.
type ContinueResponse struct {
	AllThreadsContinued bool `json:"allThreadsContinued"`
}

// StoppedEvent is the stopped event body. Reason codes: "breakpoint",
// "step", "pause", "data breakpoint" (watchpoint hits), and "entry"
// when a reverseContinue ran out of trace without hitting a
// breakpoint.
type StoppedEvent struct {
	Reason            string  `json:"reason"`
	Description       string  `json:"description,omitempty"`
	ThreadID          int     `json:"threadId,omitempty"`
	AllThreadsStopped bool    `json:"allThreadsStopped"`
	HitBreakpointIDs  []int64 `json:"hitBreakpointIds,omitempty"`
	Text              string  `json:"text,omitempty"`
	// Time is an hgdb extension: the simulation time of the stop.
	// Spec-conformant clients ignore unknown fields; the conformance
	// harness uses it to compare DAP transcripts against the same
	// script run through internal/client directly.
	Time uint64 `json:"hgdbTime"`
}

// ContinuedEvent is the continued event body.
type ContinuedEvent struct {
	ThreadID            int  `json:"threadId,omitempty"`
	AllThreadsContinued bool `json:"allThreadsContinued"`
}
