package dap

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"path"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/proto"
)

// Options configures an Adapter.
type Options struct {
	// Addr is the hgdb debug server (host:port) to attach to.
	Addr string
	// Hub marks Addr as a hub endpoint: the runtime session is not
	// dialed at construction but bound by the launch request (which
	// registers a runtime from its spec arguments) or the attach
	// request (which names an existing one via "runtime").
	Hub bool
	// Logger receives adapter diagnostics; nil is silent.
	Logger *log.Logger
	// DialTimeout bounds the attach handshake (welcome + symbol table
	// queries); 0 selects a default.
	DialTimeout time.Duration
}

// Adapter is one DAP session bridged onto one hgdb debugger session.
// The lifecycle mapping:
//
//	initialize        → capabilities (supportsStepBack iff replay)
//	launch / attach   → already-dialed hgdb session acknowledged,
//	                    "initialized" event emitted; in hub mode the
//	                    session is bound here instead — launch
//	                    registers a hub runtime from its spec
//	                    arguments, attach names an existing one, and a
//	                    capabilities event re-announces
//	                    supportsStepBack before initialized
//	setBreakpoints    → replace-per-source diffed onto add/remove,
//	                    verified against the symbol table's line set
//	configurationDone → acknowledged
//	threads           → design instances (paper Fig. 4 B)
//	stackTrace        → the one generator-statement frame per stopped
//	                    instance
//	scopes/variables  → Locals + Generator variables through the
//	                    variablesReference handle table
//	evaluate          → the runtime's compiled-expression Evaluate
//	continue/next     → continue / step commands
//	pause             → interrupt at the next statement
//	stepBack          → reverse-step (replay backends only)
//	reverseContinue   → reverse-steps until an armed breakpoint hits
//	                    or the trace begins (synthesized client-side)
//	disconnect        → hgdb session closed; the runtime survives for
//	                    other sessions
//
// Unsolicited runtime events translate on the event pump: broadcast
// stops become "stopped" events with reason breakpoint / step / pause
// / data breakpoint, resumes this adapter issues become "continued",
// and losing the hgdb session becomes "terminated".
type Adapter struct {
	conn *Conn
	opts Options
	cl   *client.Client
	sub  *client.Subscription

	// hubRuntime is the registry id this adapter bound to (hub mode);
	// empty until launch/attach. cl is nil exactly while it is empty.
	hubRuntime string

	mu       sync.Mutex
	top      string
	mode     string
	reverse  bool
	files    []string
	lineBase int // client's line numbering origin (DAP default 1)

	threadID  map[string]int // instance path → DAP thread id
	instances []string       // thread id-1 → instance path

	lastStop  *core.StopEvent
	lastEvent StoppedEvent // the stopped event emitted for lastStop (for rollback re-announcement)
	stopped   bool
	pauseReq  bool // a pause was requested; next step stop reports "pause"
	reversing bool // a reverseContinue is in flight (intermediate stops are re-stepped)

	handles *handleTable

	armed    map[string]map[int]*armedLine // symtab file → line → armed state
	armedIDs map[int64]bool                // armed hgdb breakpoint ids
}

// armedLine is the adapter-side record of one armed source line.
type armedLine struct {
	ids  []int64
	cond string
}

// New dials the hgdb server and binds the adapter to one DAP byte
// stream (stdio, a TCP connection, or an in-memory pipe in tests).
// The hgdb handshake happens here so the initialize response can
// advertise reverse-execution capability truthfully.
//
// In hub mode the runtime isn't known yet — the dial is deferred to
// the launch/attach request and capabilities are re-announced with a
// DAP capabilities event once the backend's nature is known.
func New(rw io.ReadWriter, opts Options) (*Adapter, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	a := &Adapter{
		conn:     NewConn(rw),
		opts:     opts,
		lineBase: 1,
		threadID: map[string]int{},
		handles:  newHandleTable(),
		armed:    map[string]map[int]*armedLine{},
		armedIDs: map[int64]bool{},
	}
	if opts.Hub {
		return a, nil
	}
	// Subscribe before connecting: a stop replayed to a late attacher
	// arrives right after the welcome and must reach the pump.
	a.cl = client.New(opts.Addr)
	a.sub = a.cl.Subscribe(64, "stop", "goodbye", "disconnect")
	if err := a.cl.Connect(); err != nil {
		return nil, fmt.Errorf("dap: attach %s: %w", opts.Addr, err)
	}
	welcome, err := a.cl.WaitEvent("welcome", opts.DialTimeout)
	if err != nil {
		a.cl.Close()
		return nil, fmt.Errorf("dap: no welcome from %s: %w", opts.Addr, err)
	}
	a.top, a.mode, a.reverse = welcome.Top, welcome.Mode, welcome.Reverse
	if err := a.loadSymbols(); err != nil {
		a.cl.Close()
		return nil, err
	}
	return a, nil
}

// bindHub resolves a hub-mode launch/attach to one registry runtime
// and opens the debugger session on it: launch registers a runtime
// from the spec-shaped arguments first, attach names an existing one.
// The session dial mirrors New's standalone path (subscribe before
// connect, welcome, symbols) and starts the event pump.
func (a *Adapter) bindHub(command string, args AttachArguments) error {
	if a.cl != nil {
		// Already bound (editors may retry launch after initialize);
		// re-binding to a different runtime mid-session is not a thing.
		if args.Runtime != "" && args.Runtime != a.hubRuntime {
			return fmt.Errorf("adapter is bound to runtime %q; open a new session for %q", a.hubRuntime, args.Runtime)
		}
		return nil
	}
	hc, err := client.DialHub(a.opts.Addr)
	if err != nil {
		return fmt.Errorf("hub %s: %w", a.opts.Addr, err)
	}
	defer hc.Close()
	id := args.Runtime
	if command == "launch" {
		spec := proto.RuntimeSpec{
			Name:   args.Name,
			Kind:   args.Kind,
			Design: args.Design,
			Debug:  args.Debug,
			VCD:    args.VCD,
			Symtab: args.Symtab,
		}
		if spec.Kind == "" {
			spec.Kind = "sim"
		}
		info, err := hc.Launch(spec)
		if err != nil {
			return fmt.Errorf("launch runtime: %w", err)
		}
		id = info.ID
	}
	if id == "" {
		return fmt.Errorf(`attach needs a "runtime" id (see the runtimes listing)`)
	}
	cl := client.NewOpts(a.opts.Addr, client.Options{Runtime: id})
	sub := cl.Subscribe(64, "stop", "goodbye", "disconnect")
	if err := cl.Connect(); err != nil {
		return fmt.Errorf("attach runtime %s: %w", id, err)
	}
	welcome, err := cl.WaitEvent("welcome", a.opts.DialTimeout)
	if err != nil {
		cl.Close()
		return fmt.Errorf("no welcome from runtime %s: %w", id, err)
	}
	a.mu.Lock()
	a.top, a.mode, a.reverse = welcome.Top, welcome.Mode, welcome.Reverse
	a.mu.Unlock()
	a.cl, a.sub, a.hubRuntime = cl, sub, id
	if err := a.loadSymbols(); err != nil {
		cl.Close()
		a.cl, a.sub, a.hubRuntime = nil, nil, ""
		return err
	}
	go a.pump()
	return nil
}

// loadSymbols fetches the file list and instance set once at attach;
// instances get stable DAP thread ids in sorted order.
func (a *Adapter) loadSymbols() error {
	raw, err := a.cl.Info("files", "")
	if err != nil {
		return fmt.Errorf("dap: info files: %w", err)
	}
	if err := json.Unmarshal(raw, &a.files); err != nil {
		return fmt.Errorf("dap: info files: %w", err)
	}
	raw, err = a.cl.Info("instances", "")
	if err != nil {
		return fmt.Errorf("dap: info instances: %w", err)
	}
	var instances []string
	if err := json.Unmarshal(raw, &instances); err != nil {
		return fmt.Errorf("dap: info instances: %w", err)
	}
	sort.Strings(instances)
	a.mu.Lock()
	for _, inst := range instances {
		a.ensureThreadLocked(inst)
	}
	a.mu.Unlock()
	return nil
}

func (a *Adapter) ensureThreadLocked(instance string) int {
	if id, ok := a.threadID[instance]; ok {
		return id
	}
	a.instances = append(a.instances, instance)
	id := len(a.instances)
	a.threadID[instance] = id
	return id
}

func (a *Adapter) instanceByID(id int) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if id < 1 || id > len(a.instances) {
		return "", false
	}
	return a.instances[id-1], true
}

func (a *Adapter) logf(format string, args ...any) {
	if a.opts.Logger != nil {
		a.opts.Logger.Printf(format, args...)
	}
}

// Serve runs the adapter until the DAP peer disconnects. It owns the
// request loop; the event pump runs alongside and is torn down when
// the hgdb session ends.
func (a *Adapter) Serve() error {
	defer func() {
		// Hub mode may end without ever binding a runtime.
		if a.cl != nil {
			a.cl.Close()
		}
	}()
	if a.cl != nil {
		go a.pump()
	}
	for {
		msg, err := a.conn.ReadMessage()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if msg.Type != "request" {
			continue
		}
		a.handleRequest(msg)
	}
}

// handleRequest dispatches one request and sends its response. Every
// handler error becomes a failure response; the initialized event is
// sent after its response, while resume handlers emit continued before
// theirs (see resume for why that order is load-bearing).
func (a *Adapter) handleRequest(req *Message) {
	var body any
	var err error
	var after func()
	if a.cl == nil {
		// Hub mode before launch/attach: only the lifecycle requests
		// that don't need a runtime session are meaningful.
		switch req.Command {
		case "initialize", "launch", "attach", "disconnect", "terminate":
		default:
			a.conn.RespondError(req, "no runtime bound yet: send launch (with a runtime spec) or attach (with a runtime id) first")
			return
		}
	}
	switch req.Command {
	case "initialize":
		body, err = a.onInitialize(req)
	case "launch", "attach":
		// Standalone: the hgdb session was dialed in New (so initialize
		// could advertise capabilities truthfully); both requests just
		// bind the DAP lifecycle to it. An address in the arguments
		// must match — silently debugging a different server than the
		// one the editor named would be worse than failing.
		// Hub: the request carries which runtime to debug, so the
		// session is dialed here (bindHub) and the now-known
		// capabilities are re-announced before initialized.
		var args AttachArguments
		if len(req.Arguments) > 0 {
			json.Unmarshal(req.Arguments, &args)
		}
		if args.Address != "" && args.Address != a.opts.Addr {
			err = fmt.Errorf("adapter is attached to %s; restart hgdb-dap with -attach %s", a.opts.Addr, args.Address)
			break
		}
		if a.opts.Hub {
			if err = a.bindHub(req.Command, args); err != nil {
				break
			}
			after = func() {
				a.mu.Lock()
				reverse := a.reverse
				a.mu.Unlock()
				a.conn.SendEvent("capabilities", CapabilitiesEventBody{Capabilities: Capabilities{
					SupportsConfigurationDoneRequest: true,
					SupportsConditionalBreakpoints:   true,
					SupportsEvaluateForHovers:        true,
					SupportsStepBack:                 reverse,
					SupportsTerminateRequest:         true,
				}})
				a.conn.SendEvent("initialized", nil)
			}
			break
		}
		// initialized signals readiness for breakpoint configuration.
		after = func() { a.conn.SendEvent("initialized", nil) }
	case "setBreakpoints":
		body, err = a.onSetBreakpoints(req)
	case "setExceptionBreakpoints":
		body = SetBreakpointsResponse{Breakpoints: []Breakpoint{}}
	case "configurationDone":
		// Nothing to flush: breakpoints armed eagerly per request.
	case "threads":
		body = a.onThreads()
	case "stackTrace":
		body, err = a.onStackTrace(req)
	case "scopes":
		body, err = a.onScopes(req)
	case "variables":
		body, err = a.onVariables(req)
	case "evaluate":
		body, err = a.onEvaluate(req)
	case "continue":
		if err = a.resume("continue", false); err == nil {
			body = ContinueResponse{AllThreadsContinued: true}
		}
	case "next", "stepIn", "stepOut":
		// Hardware has one frame: every step granularity is "next
		// enabled source statement".
		err = a.resume("step", false)
	case "stepBack":
		err = a.reverseResume(false)
	case "reverseContinue":
		err = a.reverseResume(true)
	case "pause":
		err = a.onPause()
	case "disconnect", "terminate":
		a.conn.Respond(req, nil)
		// Closing the hgdb session is the whole teardown: the server
		// hands control over (or auto-continues a parked simulation)
		// and the pump converts the local disconnect sentinel into a
		// terminated event. Unbound hub adapters have no session and
		// just acknowledge.
		if a.cl != nil {
			a.cl.Close()
		}
		return
	default:
		err = fmt.Errorf("unsupported request %q", req.Command)
	}
	if err != nil {
		a.conn.RespondError(req, "%v", err)
		return
	}
	if werr := a.conn.Respond(req, body); werr != nil {
		a.logf("dap: respond %s: %v", req.Command, werr)
		return
	}
	if after != nil {
		after()
	}
}

func (a *Adapter) onInitialize(req *Message) (any, error) {
	var args InitializeArguments
	if len(req.Arguments) > 0 {
		if err := json.Unmarshal(req.Arguments, &args); err != nil {
			return nil, fmt.Errorf("bad initialize arguments: %v", err)
		}
	}
	a.mu.Lock()
	a.lineBase = 1
	if args.LinesStartAt1 != nil && !*args.LinesStartAt1 {
		a.lineBase = 0
	}
	reverse := a.reverse
	a.mu.Unlock()
	return Capabilities{
		SupportsConfigurationDoneRequest: true,
		SupportsConditionalBreakpoints:   true,
		SupportsEvaluateForHovers:        true,
		SupportsStepBack:                 reverse,
		SupportsTerminateRequest:         true,
	}, nil
}

// toInternal converts a client line number to the symbol table's
// 1-based numbering, toExternal the reverse.
func (a *Adapter) toInternal(line int) int { return line - a.lineBase + 1 }
func (a *Adapter) toExternal(line int) int { return line + a.lineBase - 1 }

// resolveFile maps a DAP source to a symbol-table filename: exact path
// match first, then basename match (editors send absolute paths, the
// symbol table stores what the generator recorded).
func (a *Adapter) resolveFile(src Source) string {
	for _, cand := range []string{src.Path, src.Name} {
		if cand == "" {
			continue
		}
		for _, f := range a.files {
			if f == cand {
				return f
			}
		}
		base := path.Base(cand)
		for _, f := range a.files {
			if path.Base(f) == base {
				return f
			}
		}
	}
	return ""
}

// onSetBreakpoints implements DAP's replace-per-source semantics over
// hgdb's add/remove API: the request carries the complete desired set
// for one source; the adapter diffs it against what it armed before,
// removes stale lines, arms new ones, and verifies every requested
// line against the symbol table's breakable-line set.
func (a *Adapter) onSetBreakpoints(req *Message) (any, error) {
	var args SetBreakpointsArguments
	if err := json.Unmarshal(req.Arguments, &args); err != nil {
		return nil, fmt.Errorf("bad setBreakpoints arguments: %v", err)
	}
	want := args.Breakpoints
	if len(want) == 0 && len(args.Lines) > 0 {
		for _, l := range args.Lines {
			want = append(want, SourceBreakpoint{Line: l})
		}
	}
	out := make([]Breakpoint, len(want))
	file := a.resolveFile(args.Source)
	if file == "" {
		for i, b := range want {
			out[i] = Breakpoint{Verified: false, Line: b.Line,
				Message: fmt.Sprintf("source %q is not in the symbol table", args.Source.Path+args.Source.Name)}
		}
		return SetBreakpointsResponse{Breakpoints: out}, nil
	}

	// The breakable lines come straight from symtab.Lines via the
	// server's info topic.
	raw, err := a.cl.Info("lines", file)
	if err != nil {
		return nil, fmt.Errorf("info lines %s: %v", file, err)
	}
	var lines []int
	if err := json.Unmarshal(raw, &lines); err != nil {
		return nil, fmt.Errorf("info lines %s: %v", file, err)
	}
	breakable := make(map[int]bool, len(lines))
	for _, l := range lines {
		breakable[l] = true
	}

	// Desired set, internal line numbering; on duplicate lines the
	// last condition wins (matching DAP's replace semantics).
	desired := map[int]string{}
	for _, b := range want {
		desired[a.toInternal(b.Line)] = b.Condition
	}

	// a.armed is confined to this request-loop goroutine (the pump only
	// reads the armedIDs projection, which rebuildArmedIDs swaps under
	// a.mu), so the diff below needs no locking.
	cur := a.armed[file]
	if cur == nil {
		cur = map[int]*armedLine{}
		a.armed[file] = cur
	}

	// Remove lines that are gone or whose condition changed.
	for line, al := range cur {
		if cond, ok := desired[line]; ok && cond == al.cond {
			continue
		}
		if _, err := a.cl.RemoveBreakpoint(file, line); err != nil {
			a.logf("dap: remove breakpoint %s:%d: %v", file, line, err)
		}
		delete(cur, line)
	}

	// Arm what is new, answering in request order. The armed condition
	// always comes from the desired map — on duplicate lines both
	// entries arm (and report) the same winning condition, keeping the
	// recorded state convergent with the removal diff above.
	for i, b := range want {
		line := a.toInternal(b.Line)
		cond := desired[line]
		if al, ok := cur[line]; ok && al.cond == cond {
			out[i] = Breakpoint{ID: al.ids[0], Verified: true, Line: b.Line}
			continue
		}
		if !breakable[line] {
			// Messages speak the client's line numbering, not the
			// symbol table's internal 1-based one.
			out[i] = Breakpoint{Verified: false, Line: b.Line,
				Message: fmt.Sprintf("no breakable statement at %s:%d", file, b.Line)}
			continue
		}
		ids, err := a.cl.AddBreakpoint(file, line, cond)
		if err != nil || len(ids) == 0 {
			out[i] = Breakpoint{Verified: false, Line: b.Line,
				Message: fmt.Sprintf("arm %s:%d: %v", file, b.Line, err)}
			continue
		}
		cur[line] = &armedLine{ids: ids, cond: cond}
		out[i] = Breakpoint{ID: ids[0], Verified: true, Line: b.Line}
	}

	a.rebuildArmedIDs()
	return SetBreakpointsResponse{Breakpoints: out}, nil
}

// rebuildArmedIDs refreshes the flat id set the event pump classifies
// stops with.
func (a *Adapter) rebuildArmedIDs() {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := map[int64]bool{}
	for _, lines := range a.armed {
		for _, al := range lines {
			for _, id := range al.ids {
				ids[id] = true
			}
		}
	}
	a.armedIDs = ids
}

func (a *Adapter) onThreads() any {
	a.mu.Lock()
	defer a.mu.Unlock()
	threads := make([]Thread, len(a.instances))
	for i, inst := range a.instances {
		threads[i] = Thread{ID: i + 1, Name: inst}
	}
	return ThreadsResponse{Threads: threads}
}

// stoppedThreadLocked returns the stop-event thread for an instance,
// or nil when that instance did not hit this stop.
func (a *Adapter) stoppedThreadLocked(instance string) *core.Thread {
	if !a.stopped || a.lastStop == nil {
		return nil
	}
	for i := range a.lastStop.Threads {
		if a.lastStop.Threads[i].Instance == instance {
			return &a.lastStop.Threads[i]
		}
	}
	return nil
}

func (a *Adapter) onStackTrace(req *Message) (any, error) {
	var args ThreadedArguments
	if err := json.Unmarshal(req.Arguments, &args); err != nil {
		return nil, fmt.Errorf("bad stackTrace arguments: %v", err)
	}
	inst, ok := a.instanceByID(args.ThreadID)
	if !ok {
		return nil, fmt.Errorf("unknown thread %d", args.ThreadID)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	th := a.stoppedThreadLocked(inst)
	if th == nil {
		// Running, or this instance did not hit: no frames.
		return StackTraceResponse{StackFrames: []StackFrame{}}, nil
	}
	stop := a.lastStop
	frame := StackFrame{
		// One generator statement = one frame; the thread id doubles
		// as the frame id.
		ID:     args.ThreadID,
		Name:   fmt.Sprintf("%s at %s:%d", inst, stop.File, stop.Line),
		Source: &Source{Name: path.Base(stop.File), Path: stop.File},
		Line:   a.toExternal(stop.Line),
		Column: stop.Col,
	}
	return StackTraceResponse{StackFrames: []StackFrame{frame}, TotalFrames: 1}, nil
}

func (a *Adapter) onScopes(req *Message) (any, error) {
	var args struct {
		FrameID int `json:"frameId"`
	}
	if err := json.Unmarshal(req.Arguments, &args); err != nil {
		return nil, fmt.Errorf("bad scopes arguments: %v", err)
	}
	inst, ok := a.instanceByID(args.FrameID)
	if !ok {
		return nil, fmt.Errorf("unknown frame %d", args.FrameID)
	}
	a.mu.Lock()
	th := a.stoppedThreadLocked(inst)
	a.mu.Unlock()
	if th == nil {
		return nil, fmt.Errorf("frame %d is not stopped", args.FrameID)
	}
	locals := core.Structure(th.Locals)
	gen := core.Structure(th.Generator)
	return ScopesResponse{Scopes: []Scope{
		{Name: "Locals", VariablesReference: a.handles.alloc(locals),
			NamedVariables: len(locals)},
		{Name: "Generator", VariablesReference: a.handles.alloc(gen),
			NamedVariables: len(gen)},
	}}, nil
}

func (a *Adapter) onVariables(req *Message) (any, error) {
	var args struct {
		VariablesReference int `json:"variablesReference"`
	}
	if err := json.Unmarshal(req.Arguments, &args); err != nil {
		return nil, fmt.Errorf("bad variables arguments: %v", err)
	}
	svs, ok := a.handles.get(args.VariablesReference)
	if !ok {
		return nil, fmt.Errorf("stale variablesReference %d (invalidated by resume)", args.VariablesReference)
	}
	vars := make([]Variable, 0, len(svs))
	for _, sv := range svs {
		v := Variable{Name: sv.Name}
		if sv.Leaf != nil {
			// Display renders known ≤64-bit values as decimal (the
			// two-state behavior), four-state or wide ones as Verilog
			// literals ("8'b1x0z"), and failed reads as "<unknown>".
			v.Value = sv.Leaf.Display()
			if !sv.Leaf.Unknown {
				v.Type = fmt.Sprintf("u%d", sv.Leaf.Width)
			}
		}
		if len(sv.Children) > 0 {
			// Children expand lazily: the handle is allocated here, the
			// values are only read when the client actually asks.
			v.VariablesReference = a.handles.alloc(sv.Children)
			if v.Value == "" {
				v.Value = fmt.Sprintf("{%d fields}", len(sv.Children))
			}
		}
		vars = append(vars, v)
	}
	return VariablesResponse{Variables: vars}, nil
}

func (a *Adapter) onEvaluate(req *Message) (any, error) {
	var args EvaluateArguments
	if err := json.Unmarshal(req.Arguments, &args); err != nil {
		return nil, fmt.Errorf("bad evaluate arguments: %v", err)
	}
	instance := ""
	if args.FrameID > 0 {
		if inst, ok := a.instanceByID(args.FrameID); ok {
			instance = inst
		}
	}
	if instance == "" {
		a.mu.Lock()
		if a.stopped && a.lastStop != nil && len(a.lastStop.Threads) > 0 {
			instance = a.lastStop.Threads[0].Instance
		} else {
			instance = a.top
		}
		a.mu.Unlock()
	}
	v, err := a.cl.Evaluate(instance, args.Expression)
	if err != nil {
		return nil, err
	}
	result := strconv.FormatUint(v.Value, 10)
	if v.Display != "" {
		result = v.Display
	}
	return EvaluateResponse{
		Result: result,
		Type:   fmt.Sprintf("u%d", v.Width),
	}, nil
}

// resume issues a resume command with the stop state cleared first, so
// a new stop racing in on the pump is never clobbered. The continued
// event goes out BEFORE the command: the resumed simulation can reach
// its next stop before the command's response does, and the editor
// must always observe continued → stopped, never the reverse (a
// trailing continued would leave the UI showing a running target while
// the simulation is parked). If the command fails, the previous stop
// is re-announced to undo the continued event.
func (a *Adapter) resume(cmd string, reversing bool) error {
	a.mu.Lock()
	if !a.stopped {
		a.mu.Unlock()
		return fmt.Errorf("not stopped")
	}
	prevStop, prevEvent := a.lastStop, a.lastEvent
	a.stopped = false
	a.reversing = reversing
	a.lastStop = nil
	// A user-issued resume cancels any pending pause label, mirroring
	// the scheduler: a command from a stop clears the armed interrupt.
	a.pauseReq = false
	a.mu.Unlock()
	a.handles.reset()
	a.conn.SendEvent("continued", ContinuedEvent{AllThreadsContinued: true})
	if err := a.cl.Command(cmd); err != nil {
		// Roll back: the simulation is still parked at the old stop
		// (e.g. control is held by another session). Restore the stop
		// data and re-announce it so stackTrace/scopes keep working
		// and the editor returns to the stopped state — unless the
		// pump recorded a NEWER stop while the command was in flight
		// (the real controller resumed and hit again); that stop is
		// the truth and must not be clobbered with stale data.
		a.mu.Lock()
		if a.stopped {
			a.mu.Unlock()
			return err
		}
		a.stopped = true
		a.reversing = false
		a.lastStop = prevStop
		a.lastEvent = prevEvent
		a.mu.Unlock()
		if prevStop != nil {
			a.conn.SendEvent("stopped", prevEvent)
		}
		return err
	}
	return nil
}

// reverseResume gates stepBack/reverseContinue behind the backend's
// time-travel capability.
func (a *Adapter) reverseResume(reversing bool) error {
	a.mu.Lock()
	reverse := a.reverse
	a.mu.Unlock()
	if !reverse {
		return fmt.Errorf("backend cannot step back (live simulation; use a replay trace)")
	}
	return a.resume("reverse-step", reversing)
}

func (a *Adapter) onPause() error {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return fmt.Errorf("already stopped")
	}
	a.pauseReq = true
	a.mu.Unlock()
	if err := a.cl.Command("pause"); err != nil {
		a.mu.Lock()
		a.pauseReq = false
		a.mu.Unlock()
		return err
	}
	return nil
}

// pump translates broadcast hgdb events into DAP events until the hgdb
// session ends.
func (a *Adapter) pump() {
	for ev := range a.sub.C {
		switch ev.Type {
		case "stop":
			if ev.Stop != nil {
				a.onStop(ev.Stop)
			}
		case "goodbye":
			// Peer goodbyes are broadcast too; terminal only when it is
			// this session being dismissed or a server shutdown.
			if ev.SessionID == a.cl.SessionID() || ev.Reason == "shutdown" {
				a.conn.SendEvent("terminated", struct{}{})
				return
			}
		case "disconnect":
			a.conn.SendEvent("terminated", struct{}{})
			return
		}
	}
}

// hitBreakpointsLocked returns the armed breakpoint ids among a stop's
// threads. Non-stepping stops only ever carry armed hits; stepping
// stops (which evaluate every potential statement) intersect with the
// armed set.
func (a *Adapter) hitBreakpointsLocked(stop *core.StopEvent) []int64 {
	var hit []int64
	for _, th := range stop.Threads {
		if a.armedIDs[th.BreakpointID] {
			hit = append(hit, th.BreakpointID)
		}
	}
	return hit
}

// onStop is the pump's stop translation: classify the reason, or —
// mid-reverseContinue — keep stepping backwards until an armed
// breakpoint hits or the trace runs out.
func (a *Adapter) onStop(stop *core.StopEvent) {
	a.mu.Lock()
	a.lastStop = stop
	a.stopped = true
	for _, th := range stop.Threads {
		a.ensureThreadLocked(th.Instance)
	}
	hit := a.hitBreakpointsLocked(stop)
	if a.reversing && len(hit) == 0 && len(stop.Watch) == 0 && stop.Time > 0 {
		// Synthesized reverseContinue: this intermediate step stop is
		// not a breakpoint — swallow it and keep going backwards.
		a.stopped = false
		a.lastStop = nil
		a.mu.Unlock()
		a.handles.reset()
		if err := a.cl.Command("reverse-step"); err == nil {
			return
		}
		// The command failed (control lost, connection gone): surface
		// the stop as-is rather than going silent — and classify it by
		// its own hit/step nature, not as the trace running out.
		a.mu.Lock()
		a.lastStop = stop
		a.stopped = true
		a.reversing = false
	}
	wasReversing := a.reversing
	a.reversing = false
	a.handles.reset()

	reason := "breakpoint"
	switch {
	case len(stop.Watch) > 0:
		reason = "data breakpoint"
	case len(hit) > 0:
		reason = "breakpoint"
	case wasReversing:
		// reverseContinue exhausted the trace without a breakpoint.
		reason = "entry"
	case a.pauseReq && stop.StepStop:
		// This step stop is the requested interrupt landing; only now
		// is the pause consumed — a breakpoint or watch stop arriving
		// first must not eat the label (the interrupt is still armed
		// until the user resumes, which clears it in resume()).
		reason = "pause"
		a.pauseReq = false
	case stop.StepStop:
		reason = "step"
	}
	threadID := 0
	if len(stop.Threads) > 0 {
		threadID = a.threadID[stop.Threads[0].Instance]
	} else if len(stop.Watch) > 0 {
		if id, ok := a.threadID[stop.Watch[0].Instance]; ok {
			threadID = id
		}
	}
	if threadID == 0 && len(a.instances) > 0 {
		threadID = 1
	}
	desc := fmt.Sprintf("%s at %s:%d (time %d)", reason, stop.File, stop.Line, stop.Time)
	if stop.Reverse {
		desc += " [reverse]"
	}
	ev := StoppedEvent{
		Reason:            reason,
		Description:       desc,
		ThreadID:          threadID,
		AllThreadsStopped: true,
		HitBreakpointIDs:  hit,
		Time:              stop.Time,
	}
	a.lastEvent = ev
	a.mu.Unlock()

	a.conn.SendEvent("stopped", ev)
}
