package dap

import (
	"net"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/client"
	"repro/internal/hub"
)

// The hub-mode scenario: one adapter per editor window, all pointed at
// a single hub endpoint. launch registers a runtime on the registry
// from its spec arguments, attach picks an existing one by id, and the
// adapter re-announces capabilities once the backend's nature is known
// (initialize answered before any runtime existed).

// startDAPHub serves an empty hub on a loopback port.
func startDAPHub(t *testing.T) (*hub.Hub, string) {
	t.Helper()
	h := hub.New(hub.Options{})
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h, addr
}

// newDAPHubSession binds a hub-mode adapter (no runtime yet) to an
// in-memory pipe.
func newDAPHubSession(t *testing.T, addr string) *dapClient {
	t.Helper()
	clientEnd, adapterEnd := net.Pipe()
	ad, err := New(adapterEnd, Options{Addr: addr, Hub: true})
	if err != nil {
		t.Fatalf("hub adapter: %v", err)
	}
	go ad.Serve()
	t.Cleanup(func() { clientEnd.Close(); adapterEnd.Close() })
	return &dapClient{t: t, pipe: clientEnd, conn: NewConn(clientEnd)}
}

// capabilitiesEvent waits for the post-bind capabilities event and
// decodes its body.
func (d *dapClient) capabilitiesEvent() Capabilities {
	d.t.Helper()
	return decodeBody[CapabilitiesEventBody](d.t, d.event("capabilities")).Capabilities
}

func TestDAPHubLifecycle(t *testing.T) {
	_, addr := startDAPHub(t)

	// Record the conformance harness trace into hub-loadable files.
	dir := t.TempDir()
	trace, table, accLine := recordTrace(t, 10)
	vcdPath := filepath.Join(dir, "trace.vcd")
	if err := os.WriteFile(vcdPath, trace, 0o644); err != nil {
		t.Fatal(err)
	}
	symtabPath := filepath.Join(dir, "trace.symtab")
	sf, err := os.Create(symtabPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Save(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	// --- editor 1: launch a replay runtime through the registry.
	d1 := newDAPHubSession(t, addr)
	caps := decodeBody[Capabilities](t, d1.request("initialize", InitializeArguments{AdapterID: "hgdb"}))
	if caps.SupportsStepBack {
		t.Fatal("unbound hub adapter advertised supportsStepBack")
	}
	// Runtime-dependent requests are refused until launch/attach binds.
	d1.requestFail("threads", nil)
	d1.requestFail("setBreakpoints", SetBreakpointsArguments{Source: Source{Path: harnessFile}})
	// attach needs a runtime id, and the id must exist on the registry.
	d1.requestFail("attach", AttachArguments{})
	d1.requestFail("attach", AttachArguments{Runtime: "ghost"})

	d1.request("launch", AttachArguments{Name: "r0", Kind: "replay", VCD: vcdPath, Symtab: symtabPath})
	// The bind re-announces capabilities — now truthful about reverse
	// execution — before signalling initialized.
	if caps := d1.capabilitiesEvent(); !caps.SupportsStepBack {
		t.Fatal("replay runtime did not re-announce supportsStepBack")
	}
	d1.event("initialized")

	sb := decodeBody[SetBreakpointsResponse](t, d1.request("setBreakpoints", SetBreakpointsArguments{
		Source:      Source{Path: harnessFile},
		Breakpoints: []SourceBreakpoint{{Line: accLine}},
	}))
	if !sb.Breakpoints[0].Verified {
		t.Fatalf("breakpoint = %+v", sb.Breakpoints[0])
	}
	d1.request("configurationDone", nil)

	// The hub's own drive loop replays the trace; the armed line hits.
	first := d1.stopped()
	if first.Reason != "breakpoint" {
		t.Fatalf("first stop = %+v", first)
	}

	// Reverse execution works through the hub-routed session.
	d1.request("stepBack", ThreadedArguments{ThreadID: 1})
	d1.event("continued")
	back := d1.stopped()
	if back.Time > first.Time {
		t.Fatalf("stepBack went forward: %d after %d", back.Time, first.Time)
	}

	// Rebinding to a different runtime mid-session is refused.
	d1.requestFail("attach", AttachArguments{Runtime: "elsewhere"})

	// --- editor 2: launch with an empty spec defaults to a live sim.
	d2 := newDAPHubSession(t, addr)
	d2.request("initialize", InitializeArguments{})
	d2.request("launch", AttachArguments{})
	if caps := d2.capabilitiesEvent(); caps.SupportsStepBack {
		t.Fatal("live sim runtime advertised supportsStepBack")
	}
	d2.event("initialized")
	threads := decodeBody[ThreadsResponse](t, d2.request("threads", nil))
	if len(threads.Threads) == 0 {
		t.Fatal("sim runtime has no instances")
	}

	// The registry saw both launches.
	hc, err := client.DialHub(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	infos, err := hc.Runtimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].ID != "r0" {
		t.Fatalf("registry = %+v", infos)
	}

	// --- editor 3: attach to the replay runtime editor 1 launched. The
	// parked stop is replayed to the late attacher.
	d3 := newDAPHubSession(t, addr)
	d3.request("initialize", InitializeArguments{})
	d3.request("attach", AttachArguments{Runtime: "r0"})
	if caps := d3.capabilitiesEvent(); !caps.SupportsStepBack {
		t.Fatal("attach to replay runtime did not re-announce supportsStepBack")
	}
	d3.event("initialized")
	if stop := d3.stopped(); stop.Reason == "" {
		t.Fatalf("late-attach stop = %+v", stop)
	}

	d3.request("disconnect", nil)
	d3.event("terminated")
	d2.request("disconnect", nil)
	d2.event("terminated")
	d1.request("disconnect", nil)
	d1.event("terminated")

	// Evicting through the control session drains cleanly afterwards.
	if err := hc.Evict("r0"); err != nil {
		t.Fatal(err)
	}
	infos, err = hc.Runtimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("registry after evict = %+v", infos)
	}
}
