package sim

import "testing"

// poll drives one ChangedInto call and returns the per-slot report.
func poll(t *testing.T, s *Simulator, n int) ([]bool, bool) {
	t.Helper()
	dst := make([]bool, n)
	ok := s.ChangedInto(dst)
	return dst, ok
}

func TestTrackChangesReportsActivity(t *testing.T) {
	nl := elaborate(t, buildCounter(), false)
	s := New(nl)
	s.TrackChanges([]string{"Counter.count", "Counter.en"})

	// First poll after a registration: everything dirty.
	dst, ok := poll(t, s, 2)
	if !ok || !dst[0] || !dst[1] {
		t.Fatalf("first poll = %v ok=%v, want all dirty", dst, ok)
	}

	// Idle cycles: nothing changes, nothing reported.
	s.Run(3)
	dst, ok = poll(t, s, 2)
	if !ok || dst[0] || dst[1] {
		t.Fatalf("idle poll = %v ok=%v, want all clean", dst, ok)
	}

	// Poke en: only en dirty.
	s.Poke("Counter.en", 1)
	dst, ok = poll(t, s, 2)
	if !ok || dst[0] || !dst[1] {
		t.Fatalf("after poke = %v ok=%v, want [clean dirty]", dst, ok)
	}

	// A stepped cycle with en=1 commits count: count dirty; en holds.
	s.Run(1)
	dst, ok = poll(t, s, 2)
	if !ok || !dst[0] || dst[1] {
		t.Fatalf("after step = %v ok=%v, want [dirty clean]", dst, ok)
	}

	// Polls consume the pending set: an immediate re-poll is clean.
	dst, ok = poll(t, s, 2)
	if !ok || dst[0] || dst[1] {
		t.Fatalf("re-poll = %v ok=%v, want all clean", dst, ok)
	}

	// A poke that does not change the value reports nothing.
	v, _ := s.Peek("Counter.en")
	s.Poke("Counter.en", v.Bits)
	dst, _ = poll(t, s, 2)
	if dst[1] {
		t.Fatalf("no-op poke reported dirty: %v", dst)
	}
}

func TestTrackChangesAccumulatesAcrossSkippedPolls(t *testing.T) {
	nl := elaborate(t, buildCounter(), false)
	s := New(nl)
	s.Poke("Counter.en", 1)
	s.TrackChanges([]string{"Counter.count"})
	poll(t, s, 1) // consume the registration report

	// Several cycles without polling: the change must not be lost.
	s.Run(5)
	dst, ok := poll(t, s, 1)
	if !ok || !dst[0] {
		t.Fatalf("accumulated changes dropped: %v ok=%v", dst, ok)
	}
}

func TestTrackChangesUnresolvedAlwaysDirty(t *testing.T) {
	nl := elaborate(t, buildCounter(), false)
	s := New(nl)
	s.TrackChanges([]string{"Counter.count", "Counter.ghost"})
	poll(t, s, 2)
	s.Run(1) // en=0: count holds
	dst, ok := poll(t, s, 2)
	if !ok {
		t.Fatal("poll not ok")
	}
	if dst[0] {
		t.Fatalf("idle count reported dirty: %v", dst)
	}
	if !dst[1] {
		t.Fatalf("unresolved path reported clean: %v", dst)
	}
}

func TestTrackChangesReRegistration(t *testing.T) {
	nl := elaborate(t, buildCounter(), false)
	s := New(nl)
	s.TrackChanges([]string{"Counter.count"})
	poll(t, s, 1)

	// Replace the set: the new registration reports fresh, and the old
	// signal's marks no longer land on stale slots.
	s.TrackChanges([]string{"Counter.en"})
	dst, ok := poll(t, s, 1)
	if !ok || !dst[0] {
		t.Fatalf("fresh registration poll = %v ok=%v", dst, ok)
	}
	s.Poke("Counter.en", 1)
	s.Run(2) // count changes too, but is no longer tracked
	dst, _ = poll(t, s, 1)
	if !dst[0] {
		t.Fatalf("en change missed after re-registration: %v", dst)
	}

	// Empty registration disables reporting.
	s.TrackChanges(nil)
	if _, ok := poll(t, s, 0); ok {
		t.Fatal("empty registration still reported ok")
	}
}
