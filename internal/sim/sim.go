// Package sim is a cycle-accurate RTL simulator for elaborated
// netlists. It implements the two properties the paper's breakpoint
// emulation relies on (§3): designs are synchronous (state advances only
// at the positive clock edge) and logic is zero-delay (all combinational
// values are stable when the edge callback fires). Callbacks registered
// on the clock edge observe the settled pre-edge state — the same
// contract hgdb gets from commercial simulators through VPI.
package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/rtl"
)

// memCommit is one pending synchronous memory write.
type memCommit struct {
	mem  string
	addr uint64
	data uint64
}

// EdgeCallback is invoked once per positive clock edge after
// combinational logic settles and before registers commit. The paper's
// hgdb runtime does all breakpoint work inside this callback.
type EdgeCallback func(time uint64)

// Simulator advances an elaborated netlist cycle by cycle.
type Simulator struct {
	nl    *rtl.Netlist
	state *rtl.EvalState
	mems  map[string]*rtl.MemSpec
	time  uint64
	// pending register values are computed before commit so registers
	// update atomically.
	regNext []eval.Value
	// memCommits is reused across Steps to avoid per-cycle allocation.
	memCommits []memCommit
	// callbacks fire at every posedge; removal is by id.
	callbacks map[int]EdgeCallback
	cbOrder   []int
	nextCB    int
	// changeHooks observe committed value changes (used by VCD dumping).
	changeHooks []func(sig *rtl.Signal, v eval.Value)
	prev        []eval.Value
	trackChange bool

	// Dirty-signal tracking (the vpi.ChangeReporter capability): the
	// debugger registers the signal paths it reads every cycle; every
	// state-mutation site compares old vs new and, on an actual value
	// change of a tracked signal, sets its pending bit. The whole
	// mechanism costs nothing until TrackChanges registers a non-empty
	// set (one branch per assignment), and after that one array read
	// per changed signal — per-edge reporting cost is proportional to
	// activity, not design size. Single consumer, simulation goroutine
	// only, like the rest of the simulator.
	dirtyTrack bool
	trackSlot  []int32 // signal index -> tracked slot, -1 untracked
	trackIdx   []int   // tracked slot -> signal index, -1 unresolved
	pending    []bool  // tracked slot -> changed since last ChangedInto
	trackFresh bool    // first ChangedInto after TrackChanges: all dirty

	// gen is the state publication point: every mutating operation
	// bumps it when done (release), every read loads it first
	// (acquire). This orders a read that happens after the simulation
	// went quiet against the final writes of the goroutine that drove
	// it — the debugger's idle-query fallback relies on this. It does
	// NOT license truly concurrent access while the simulator is
	// stepping; the debugger runtime serializes that through its
	// clock-edge query queue.
	gen atomic.Uint64
}

// publish marks the end of a state mutation (release half of the
// publication point).
func (s *Simulator) publish() { s.gen.Add(1) }

// syncPoint precedes a state read (acquire half).
func (s *Simulator) syncPoint() { s.gen.Load() }

// New builds a simulator. All signals start at zero and memories are
// zero-filled.
func New(nl *rtl.Netlist) *Simulator {
	st := &rtl.EvalState{
		Values:   make([]eval.Value, len(nl.Signals)),
		MemData:  map[string][]uint64{},
		MemWidth: map[string]int{},
	}
	for _, sig := range nl.Signals {
		st.Values[sig.Index] = eval.Make(0, sig.Width, sig.Signed)
	}
	mems := map[string]*rtl.MemSpec{}
	for _, m := range nl.Mems {
		st.MemData[m.Name] = make([]uint64, m.Depth)
		st.MemWidth[m.Name] = m.Width
		mems[m.Name] = m
	}
	return &Simulator{
		nl:        nl,
		state:     st,
		mems:      mems,
		regNext:   make([]eval.Value, len(nl.Regs)),
		callbacks: map[int]EdgeCallback{},
	}
}

// Netlist returns the design under simulation.
func (s *Simulator) Netlist() *rtl.Netlist { return s.nl }

// Time returns the current simulation time in cycles.
func (s *Simulator) Time() uint64 {
	s.syncPoint()
	return s.time
}

// Peek returns the current value of a signal by full hierarchical name.
func (s *Simulator) Peek(name string) (eval.Value, error) {
	s.syncPoint()
	sig, ok := s.nl.Signal(name)
	if !ok {
		return eval.Value{}, fmt.Errorf("sim: unknown signal %q", name)
	}
	return s.state.Values[sig.Index], nil
}

// PeekBatch reads many signals in one call, writing values into out
// (which must be at least as long as paths). It is the native batched
// read behind the vpi.BatchReader capability: one call resolves and
// reads the whole dependency set of the debugger's inserted
// breakpoints, instead of one Peek round trip per signal.
func (s *Simulator) PeekBatch(paths []string, out []eval.Value) error {
	if len(out) < len(paths) {
		return fmt.Errorf("sim: PeekBatch output too short: %d < %d", len(out), len(paths))
	}
	s.syncPoint()
	for i, p := range paths {
		sig, ok := s.nl.Signal(p)
		if !ok {
			return fmt.Errorf("sim: unknown signal %q", p)
		}
		out[i] = s.state.Values[sig.Index]
	}
	return nil
}

// Poke sets a top-level input (or forces any signal, which the next
// settle may overwrite for combinational nodes).
func (s *Simulator) Poke(name string, v uint64) error {
	sig, ok := s.nl.Signal(name)
	if !ok {
		return fmt.Errorf("sim: unknown signal %q", name)
	}
	nv := eval.Make(v, sig.Width, sig.Signed)
	if s.dirtyTrack && nv != s.state.Values[sig.Index] {
		s.markChanged(sig.Index)
	}
	s.state.Values[sig.Index] = nv
	s.publish()
	return nil
}

// PokeReg deposits a value directly into a register, bypassing the
// next-value logic for the current cycle (the debugger's set-value
// primitive).
func (s *Simulator) PokeReg(name string, v uint64) error {
	sig, ok := s.nl.Signal(name)
	if !ok {
		return fmt.Errorf("sim: unknown signal %q", name)
	}
	if sig.Kind != rtl.KindReg {
		return fmt.Errorf("sim: %q is not a register", name)
	}
	nv := eval.Make(v, sig.Width, sig.Signed)
	if s.dirtyTrack && nv != s.state.Values[sig.Index] {
		s.markChanged(sig.Index)
	}
	s.state.Values[sig.Index] = nv
	s.publish()
	return nil
}

// WriteMem deposits a word into a memory (testbench program loading).
func (s *Simulator) WriteMem(mem string, addr uint64, v uint64) error {
	data, ok := s.state.MemData[mem]
	if !ok {
		return fmt.Errorf("sim: unknown memory %q", mem)
	}
	if addr >= uint64(len(data)) {
		return fmt.Errorf("sim: address %d out of range for %q (depth %d)", addr, mem, len(data))
	}
	data[addr] = v & eval.Mask(s.state.MemWidth[mem])
	s.publish()
	return nil
}

// ReadMem reads a word from a memory.
func (s *Simulator) ReadMem(mem string, addr uint64) (uint64, error) {
	data, ok := s.state.MemData[mem]
	if !ok {
		return 0, fmt.Errorf("sim: unknown memory %q", mem)
	}
	if addr >= uint64(len(data)) {
		return 0, fmt.Errorf("sim: address %d out of range for %q", addr, mem)
	}
	s.syncPoint()
	return data[addr], nil
}

// TrackChanges registers the set of signal paths to report value
// changes for (the vpi.ChangeReporter capability), replacing any
// previous registration. Unresolvable paths stay registered and are
// permanently reported changed.
func (s *Simulator) TrackChanges(paths []string) {
	if s.trackSlot == nil && len(paths) > 0 {
		s.trackSlot = make([]int32, len(s.nl.Signals))
		for i := range s.trackSlot {
			s.trackSlot[i] = -1
		}
	}
	// Clear the previous registration via its slot list, not a full
	// sweep of the design.
	for _, idx := range s.trackIdx {
		if idx >= 0 {
			s.trackSlot[idx] = -1
		}
	}
	s.trackIdx = s.trackIdx[:0]
	if cap(s.pending) < len(paths) {
		s.pending = make([]bool, len(paths))
	}
	s.pending = s.pending[:len(paths)]
	for slot, p := range paths {
		s.pending[slot] = false
		sig, ok := s.nl.Signal(p)
		if !ok {
			s.trackIdx = append(s.trackIdx, -1)
			continue
		}
		s.trackIdx = append(s.trackIdx, sig.Index)
		s.trackSlot[sig.Index] = int32(slot)
	}
	s.dirtyTrack = len(paths) > 0
	s.trackFresh = true
}

// ChangedInto implements the vpi.ChangeReporter poll: dst[i] reports
// whether tracked path i changed since the previous poll. The first
// poll after a registration reports everything changed.
func (s *Simulator) ChangedInto(dst []bool) bool {
	if !s.dirtyTrack || len(dst) < len(s.pending) {
		return false
	}
	if s.trackFresh {
		s.trackFresh = false
		for i := range s.pending {
			s.pending[i] = false
			dst[i] = true
		}
		return true
	}
	for i, p := range s.pending {
		// Unresolved paths never get pending marks; report them changed
		// every poll so the debugger stays conservative about them.
		dst[i] = p || s.trackIdx[i] < 0
		s.pending[i] = false
	}
	return true
}

// markChanged records an actual value change of signal idx for the
// dirty-tracking poll. Callers gate on s.dirtyTrack.
func (s *Simulator) markChanged(idx int) {
	if slot := s.trackSlot[idx]; slot >= 0 {
		s.pending[slot] = true
	}
}

// OnClockEdge registers a callback invoked at every positive clock edge
// with settled combinational state. It returns an id for removal.
func (s *Simulator) OnClockEdge(cb EdgeCallback) int {
	id := s.nextCB
	s.nextCB++
	s.callbacks[id] = cb
	s.cbOrder = append(s.cbOrder, id)
	return id
}

// RemoveCallback deregisters a clock-edge callback.
func (s *Simulator) RemoveCallback(id int) {
	delete(s.callbacks, id)
	for i, v := range s.cbOrder {
		if v == id {
			s.cbOrder = append(s.cbOrder[:i], s.cbOrder[i+1:]...)
			break
		}
	}
}

// OnChange registers a hook observing committed value changes; used by
// trace writers. Enabling change tracking costs one extra value
// snapshot per cycle.
func (s *Simulator) OnChange(hook func(sig *rtl.Signal, v eval.Value)) {
	s.changeHooks = append(s.changeHooks, hook)
	if !s.trackChange {
		s.trackChange = true
		s.prev = make([]eval.Value, len(s.state.Values))
		copy(s.prev, s.state.Values)
		// Report initial values.
		for _, sig := range s.nl.Signals {
			for _, h := range s.changeHooks {
				h(sig, s.state.Values[sig.Index])
			}
		}
	}
}

// Settle evaluates all combinational logic in topological order. It is
// called automatically by Step; testbenches call it directly after
// poking inputs mid-cycle.
func (s *Simulator) Settle() {
	for i := range s.nl.Assigns {
		a := &s.nl.Assigns[i]
		v := a.Expr.Eval(s.state)
		// Clamp to declared width (expression widths can exceed the
		// declared node width only via compiler bugs, but keep the
		// invariant hard).
		if v.Width != a.Dst.Width {
			v = eval.Make(v.Bits, a.Dst.Width, a.Dst.Signed)
		}
		if s.dirtyTrack && v != s.state.Values[a.Dst.Index] {
			s.markChanged(a.Dst.Index)
		}
		s.state.Values[a.Dst.Index] = v
	}
	s.publish()
}

// Step advances one clock cycle:
//  1. combinational settle,
//  2. posedge callbacks observe the stable pre-edge state,
//  3. registers and memories commit,
//  4. time advances.
func (s *Simulator) Step() {
	s.Settle()
	for _, id := range s.cbOrder {
		if cb, ok := s.callbacks[id]; ok {
			cb(s.time)
		}
	}
	// Compute all register next-values against pre-edge state…
	for i := range s.nl.Regs {
		r := &s.nl.Regs[i]
		v := r.Next.Eval(s.state)
		if v.Width != r.Sig.Width {
			v = eval.Make(v.Bits, r.Sig.Width, r.Sig.Signed)
		}
		s.regNext[i] = v
	}
	// …and memory writes too (read-before-write port semantics).
	commits := s.memCommits[:0]
	for _, m := range s.nl.Mems {
		for _, wp := range m.Writes {
			if wp.En.Eval(s.state).IsTrue() {
				addr := wp.Addr.Eval(s.state).Bits
				if addr < uint64(m.Depth) {
					commits = append(commits, memCommit{
						mem:  m.Name,
						addr: addr,
						data: wp.Data.Eval(s.state).Bits & eval.Mask(m.Width),
					})
				}
			}
		}
	}
	// Commit.
	for i := range s.nl.Regs {
		idx := s.nl.Regs[i].Sig.Index
		if s.dirtyTrack && s.regNext[i] != s.state.Values[idx] {
			s.markChanged(idx)
		}
		s.state.Values[idx] = s.regNext[i]
	}
	for _, c := range commits {
		s.state.MemData[c.mem][c.addr] = c.data
	}
	s.memCommits = commits[:0]
	s.time++
	if s.trackChange {
		s.Settle() // make post-edge combinational state visible to hooks
		for _, sig := range s.nl.Signals {
			cur := s.state.Values[sig.Index]
			if cur != s.prev[sig.Index] {
				for _, h := range s.changeHooks {
					h(sig, cur)
				}
				s.prev[sig.Index] = cur
			}
		}
	}
	s.publish()
}

// Run advances n cycles.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Reset asserts the named reset input for n cycles, then deasserts it.
func (s *Simulator) Reset(resetSignal string, n int) error {
	if err := s.Poke(resetSignal, 1); err != nil {
		return err
	}
	s.Run(n)
	return s.Poke(resetSignal, 0)
}
