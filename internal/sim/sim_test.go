package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/eval"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
)

func elaborate(t *testing.T, c *generator.Circuit, debug bool) *rtl.Netlist {
	t.Helper()
	comp, err := passes.Compile(c.MustBuild(), debug)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

func buildCounter() *generator.Circuit {
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8)))
	})
	out.Set(count)
	return c
}

func TestCounterSimulation(t *testing.T) {
	nl := elaborate(t, buildCounter(), false)
	s := New(nl)
	if err := s.Reset("Counter.reset", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("Counter.en", 1); err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	v, err := s.Peek("Counter.count")
	if err != nil {
		t.Fatal(err)
	}
	if v.Bits != 5 {
		t.Fatalf("count = %d, want 5", v.Bits)
	}
	// Disable and check it holds.
	s.Poke("Counter.en", 0)
	s.Run(3)
	v, _ = s.Peek("Counter.count")
	if v.Bits != 5 {
		t.Fatalf("count after disable = %d, want 5", v.Bits)
	}
	// Output tracks the register.
	o, _ := s.Peek("Counter.out")
	s.Settle()
	o, _ = s.Peek("Counter.out")
	if o.Bits != 5 {
		t.Fatalf("out = %d", o.Bits)
	}
}

func TestCounterWraps(t *testing.T) {
	nl := elaborate(t, buildCounter(), false)
	s := New(nl)
	s.Reset("Counter.reset", 1)
	s.Poke("Counter.en", 1)
	s.Run(256 + 3)
	v, _ := s.Peek("Counter.count")
	if v.Bits != 3 {
		t.Fatalf("count after wrap = %d, want 3", v.Bits)
	}
}

// The accumulator (paper Listing 1) computed in hardware: sum of odd
// inputs, combinationally.
func TestAccumulatorCombinational(t *testing.T) {
	c := generator.NewCircuit("Acc")
	m := c.NewModule("Acc")
	d0 := m.Input("data_0", ir.UIntType(8))
	d1 := m.Input("data_1", ir.UIntType(8))
	out := m.Output("out", ir.UIntType(8))
	sum := m.Wire("sum", ir.UIntType(8))
	sum.Set(m.Lit(0, 8))
	for _, d := range []*generator.Signal{d0, d1} {
		dd := d
		m.When(dd.Bit(0), func() {
			sum.Set(sum.AddMod(dd))
		})
	}
	out.Set(sum)
	nl := elaborate(t, c, false)
	s := New(nl)

	cases := []struct {
		d0, d1, want uint64
	}{
		{3, 5, 8},   // both odd
		{2, 5, 5},   // first even
		{4, 6, 0},   // both even
		{7, 0, 7},   // second zero (even)
		{255, 1, 0}, // 255+1 wraps to 0 in 8 bits
	}
	for _, tc := range cases {
		s.Poke("Acc.data_0", tc.d0)
		s.Poke("Acc.data_1", tc.d1)
		s.Settle()
		v, _ := s.Peek("Acc.out")
		if v.Bits != tc.want {
			t.Errorf("acc(%d, %d) = %d, want %d", tc.d0, tc.d1, v.Bits, tc.want)
		}
	}
}

// Property: the optimized and debug builds of the accumulator are
// observationally equivalent — optimization must never change
// simulation results.
func TestOptimizationEquivalenceProperty(t *testing.T) {
	build := func() *generator.Circuit {
		c := generator.NewCircuit("Acc")
		m := c.NewModule("Acc")
		d0 := m.Input("data_0", ir.UIntType(8))
		d1 := m.Input("data_1", ir.UIntType(8))
		out := m.Output("out", ir.UIntType(8))
		sum := m.Wire("sum", ir.UIntType(8))
		sum.Set(m.Lit(0, 8))
		for _, d := range []*generator.Signal{d0, d1} {
			dd := d
			m.When(dd.Bit(0), func() {
				sum.Set(sum.AddMod(dd))
			})
		}
		out.Set(sum)
		return c
	}
	opt := New(elaborate(t, build(), false))
	dbg := New(elaborate(t, build(), true))
	f := func(a, b uint8) bool {
		for _, s := range []*Simulator{opt, dbg} {
			s.Poke("Acc.data_0", uint64(a))
			s.Poke("Acc.data_1", uint64(b))
			s.Settle()
		}
		vo, _ := opt.Peek("Acc.out")
		vd, _ := dbg.Peek("Acc.out")
		return vo.Bits == vd.Bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemorySimulation(t *testing.T) {
	c := generator.NewCircuit("M")
	m := c.NewModule("M")
	addr := m.Input("addr", ir.UIntType(4))
	wdata := m.Input("wdata", ir.UIntType(32))
	wen := m.Input("wen", ir.UIntType(1))
	rdata := m.Output("rdata", ir.UIntType(32))
	mem := m.Mem("ram", ir.UIntType(32), 16)
	rdata.Set(mem.Read(addr))
	mem.Write(addr, wdata, wen)
	nl := elaborate(t, c, false)
	s := New(nl)

	// Write 0xDEAD to address 3.
	s.Poke("M.addr", 3)
	s.Poke("M.wdata", 0xDEAD)
	s.Poke("M.wen", 1)
	s.Step()
	s.Poke("M.wen", 0)
	s.Settle()
	v, _ := s.Peek("M.rdata")
	if v.Bits != 0xDEAD {
		t.Fatalf("rdata = %#x, want 0xDEAD", v.Bits)
	}
	// Direct memory access for testbench loading.
	if err := s.WriteMem("M.ram", 5, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadMem("M.ram", 5)
	if err != nil || got != 0xBEEF {
		t.Fatalf("ReadMem = %#x, %v", got, err)
	}
	s.Poke("M.addr", 5)
	s.Settle()
	v, _ = s.Peek("M.rdata")
	if v.Bits != 0xBEEF {
		t.Fatalf("rdata = %#x, want 0xBEEF", v.Bits)
	}
	// Out-of-range guarded.
	if err := s.WriteMem("M.ram", 99, 1); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, err := s.ReadMem("M.nope", 0); err == nil {
		t.Fatal("unknown memory accepted")
	}
}

func TestMemoryReadBeforeWriteSemantics(t *testing.T) {
	// A write in cycle N is visible at cycle N+1, not combinationally.
	c := generator.NewCircuit("RBW")
	m := c.NewModule("RBW")
	wen := m.Input("wen", ir.UIntType(1))
	rdata := m.Output("rdata", ir.UIntType(8))
	mem := m.Mem("ram", ir.UIntType(8), 4)
	rdata.Set(mem.Read(m.Lit(0, 2)))
	mem.Write(m.Lit(0, 2), m.Lit(0x42, 8), wen)
	nl := elaborate(t, c, false)
	s := New(nl)
	s.Poke("RBW.wen", 1)
	s.Settle()
	v, _ := s.Peek("RBW.rdata")
	if v.Bits != 0 {
		t.Fatalf("pre-edge read = %#x, want 0", v.Bits)
	}
	s.Step()
	s.Settle()
	v, _ = s.Peek("RBW.rdata")
	if v.Bits != 0x42 {
		t.Fatalf("post-edge read = %#x, want 0x42", v.Bits)
	}
}

func TestClockEdgeCallbackObservesStableState(t *testing.T) {
	nl := elaborate(t, buildCounter(), false)
	s := New(nl)
	s.Reset("Counter.reset", 1)
	s.Poke("Counter.en", 1)
	var seen []uint64
	id := s.OnClockEdge(func(time uint64) {
		// Callbacks observe the pre-edge register value: at the edge of
		// cycle N the register still holds the value committed at N-1.
		v, err := s.Peek("Counter.count")
		if err != nil {
			t.Errorf("peek in callback: %v", err)
		}
		seen = append(seen, v.Bits)
	})
	s.Run(4)
	if len(seen) != 4 {
		t.Fatalf("callback fired %d times", len(seen))
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("callback %d saw count=%d, want %d", i, v, i)
		}
	}
	s.RemoveCallback(id)
	s.Run(2)
	if len(seen) != 4 {
		t.Fatal("callback fired after removal")
	}
}

func TestCallbackTimeAdvances(t *testing.T) {
	nl := elaborate(t, buildCounter(), false)
	s := New(nl)
	var times []uint64
	s.OnClockEdge(func(tm uint64) { times = append(times, tm) })
	s.Run(3)
	if len(times) != 3 || times[0] != 0 || times[2] != 2 {
		t.Fatalf("times = %v", times)
	}
	if s.Time() != 3 {
		t.Fatalf("sim time = %d", s.Time())
	}
}

func TestOnChangeHook(t *testing.T) {
	nl := elaborate(t, buildCounter(), false)
	s := New(nl)
	changes := map[string]int{}
	s.OnChange(func(sig *rtl.Signal, v eval.Value) {
		changes[sig.Name]++
	})
	// Initial values reported for every signal.
	if changes["Counter.count"] != 1 {
		t.Fatalf("initial change report = %v", changes)
	}
	s.Reset("Counter.reset", 1)
	s.Poke("Counter.en", 1)
	s.Run(3)
	// count changes every cycle while enabled.
	if changes["Counter.count"] < 3 {
		t.Fatalf("count changes = %d, want >= 3", changes["Counter.count"])
	}
}
