package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/generator"
	"repro/internal/ir"
)

// TestALUAgainstGoModel drives a combinational ALU design with random
// inputs and checks every output against a plain-Go model — an
// end-to-end property over generator → passes → rtl → sim.
func TestALUAgainstGoModel(t *testing.T) {
	c := generator.NewCircuit("ALU")
	m := c.NewModule("ALU")
	a := m.Input("a", ir.UIntType(16))
	b := m.Input("b", ir.UIntType(16))
	op := m.Input("op", ir.UIntType(3))
	out := m.Output("out", ir.UIntType(16))
	r := m.Wire("r", ir.UIntType(16))
	r.Set(a.AddMod(b))
	m.When(op.Eq(m.Lit(1, 3)), func() { r.Set(a.SubMod(b)) })
	m.When(op.Eq(m.Lit(2, 3)), func() { r.Set(a.And(b)) })
	m.When(op.Eq(m.Lit(3, 3)), func() { r.Set(a.Or(b)) })
	m.When(op.Eq(m.Lit(4, 3)), func() { r.Set(a.Xor(b)) })
	m.When(op.Eq(m.Lit(5, 3)), func() { r.Set(a.Lt(b).Pad(16)) })
	m.When(op.Eq(m.Lit(6, 3)), func() { r.Set(a.Mul(b).Bits(15, 0)) })
	m.When(op.Eq(m.Lit(7, 3)), func() { r.Set(a.Not()) })
	out.Set(r)
	s := New(elaborate(t, c, false))

	model := func(a, b uint16, op uint8) uint16 {
		switch op & 7 {
		case 1:
			return a - b
		case 2:
			return a & b
		case 3:
			return a | b
		case 4:
			return a ^ b
		case 5:
			if a < b {
				return 1
			}
			return 0
		case 6:
			return a * b
		case 7:
			return ^a
		default:
			return a + b
		}
	}
	f := func(av, bv uint16, opv uint8) bool {
		s.Poke("ALU.a", uint64(av))
		s.Poke("ALU.b", uint64(bv))
		s.Poke("ALU.op", uint64(opv&7))
		s.Settle()
		got, err := s.Peek("ALU.out")
		if err != nil {
			return false
		}
		return uint16(got.Bits) == model(av, bv, opv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestThreeLevelHierarchy simulates a three-deep module tree and checks
// values propagate through every boundary.
func TestThreeLevelHierarchy(t *testing.T) {
	c := generator.NewCircuit("Top")
	leaf := c.NewModule("Leaf")
	li := leaf.Input("in", ir.UIntType(8))
	lo := leaf.Output("out", ir.UIntType(8))
	lo.Set(li.AddMod(leaf.Lit(1, 8)))

	mid := c.NewModule("Mid")
	mi := mid.Input("in", ir.UIntType(8))
	mo := mid.Output("out", ir.UIntType(8))
	u := mid.Instance("leaf0", leaf)
	v := mid.Instance("leaf1", leaf)
	u.IO("in").Set(mi)
	v.IO("in").Set(u.IO("out"))
	mo.Set(v.IO("out"))

	top := c.NewModule("Top")
	ti := top.Input("in", ir.UIntType(8))
	to := top.Output("out", ir.UIntType(8))
	w := top.Instance("mid0", mid)
	w.IO("in").Set(ti)
	to.Set(w.IO("out"))

	s := New(elaborate(t, c, false))
	s.Poke("Top.in", 10)
	s.Settle()
	got, _ := s.Peek("Top.out")
	if got.Bits != 12 { // +1 per leaf, two leaves
		t.Fatalf("out = %d, want 12", got.Bits)
	}
	// Interior signals addressable by full path.
	midOut, err := s.Peek("Top.mid0.leaf0.out")
	if err != nil || midOut.Bits != 11 {
		t.Fatalf("interior = %d, %v", midOut.Bits, err)
	}
}

// TestSignedDatapath checks SInt arithmetic through the full stack.
func TestSignedDatapath(t *testing.T) {
	c := generator.NewCircuit("S")
	m := c.NewModule("S")
	a := m.Input("a", ir.UIntType(8))
	isNeg := m.Output("neg", ir.UIntType(1))
	abs := m.Output("abs", ir.UIntType(8))
	sa := a.AsSInt()
	isNeg.Set(sa.Lt(m.LitS(0, 8)))
	absW := m.Wire("absw", ir.UIntType(8))
	absW.Set(a)
	m.When(sa.Lt(m.LitS(0, 8)), func() {
		absW.Set(a.Not().AddMod(m.Lit(1, 8))) // two's complement negate
	})
	abs.Set(absW)
	s := New(elaborate(t, c, false))
	cases := []struct{ in, neg, abs uint64 }{
		{5, 0, 5},
		{0, 0, 0},
		{0xFB, 1, 5},   // -5
		{0x80, 1, 128}, // -128 -> wraps to 128
	}
	for _, tc := range cases {
		s.Poke("S.a", tc.in)
		s.Settle()
		n, _ := s.Peek("S.neg")
		ab, _ := s.Peek("S.abs")
		if n.Bits != tc.neg || ab.Bits != tc.abs {
			t.Errorf("a=%#x: neg=%d abs=%d, want %d/%d", tc.in, n.Bits, ab.Bits, tc.neg, tc.abs)
		}
	}
}
