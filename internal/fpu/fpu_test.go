package fpu

import (
	"testing"
	"testing/quick"

	"math"

	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
)

// makeSim compiles and elaborates the FPToInt circuit.
func makeSim(t *testing.T, buggy bool) *sim.Simulator {
	t.Helper()
	circ, err := BuildCircuit(buggy)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := passes.Compile(circ, false)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(nl)
}

// runCompare drives one comparison through the hardware.
func runCompare(s *sim.Simulator, op int, a, b uint32) (result uint32, flags uint32) {
	s.Poke("FPToInt.io_in1", uint64(a))
	s.Poke("FPToInt.io_in2", uint64(b))
	s.Poke("FPToInt.io_rm", uint64(op))
	s.Poke("FPToInt.io_wflags", 1)
	s.Settle()
	r, _ := s.Peek("FPToInt.io_out_toint")
	f, _ := s.Peek("FPToInt.io_out_exc")
	return uint32(r.Bits), uint32(f.Bits)
}

func TestFixedVersionMatchesModel(t *testing.T) {
	s := makeSim(t, false)
	cases := []struct {
		op   int
		a, b uint32
	}{
		{RmFEQ, One, One},
		{RmFEQ, One, Two},
		{RmFEQ, QNaN, One}, // quiet NaN: eq=0, NO invalid flag
		{RmFEQ, SNaN, One}, // signaling NaN: invalid
		{RmFLT, One, Two},  // 1 < 2
		{RmFLT, Two, One},  // 2 < 1 false
		{RmFLT, QNaN, One}, // signaling comparison: invalid
		{RmFLE, One, One},  // 1 <= 1
		{RmFLE, Two, One},  // false
		{RmFLT, NegOne, One},
		{RmFEQ, PlusZero, NegZero}, // +0 == -0
		{RmFLT, NegOne, NegZero},   // -1 < -0
	}
	for _, c := range cases {
		gotR, gotF := runCompare(s, c.op, c.a, c.b)
		wantR, wantF := Model(c.op, c.a, c.b)
		if gotR != wantR || gotF != wantF {
			t.Errorf("op=%d a=%#x b=%#x: hw=(%d, %#x) model=(%d, %#x)",
				c.op, c.a, c.b, gotR, gotF, wantR, wantF)
		}
	}
}

// TestBugReproduced is the paper's case study setup: the buggy build's
// FPU output "mismatches with the functional model" on quiet-NaN FEQ.
func TestBugReproduced(t *testing.T) {
	buggy := makeSim(t, true)
	gotR, gotF := runCompare(buggy, RmFEQ, QNaN, One)
	wantR, wantF := Model(RmFEQ, QNaN, One)
	if gotR != wantR {
		t.Fatalf("compare result diverged: hw=%d model=%d", gotR, wantR)
	}
	// The bug: exception flags are incorrectly set (invalid raised for
	// a quiet comparison of a quiet NaN).
	if gotF == wantF {
		t.Fatalf("bug not reproduced: flags match (%#x)", gotF)
	}
	if gotF != 0x10 {
		t.Fatalf("buggy flags = %#x, want invalid (0x10)", gotF)
	}
	// The stuck signal is observable exactly where §4.2 looks: the
	// dcmp instance's signaling input is permanently asserted.
	sig, err := buggy.Peek("FPToInt.dcmp.io_signaling")
	if err != nil {
		t.Fatal(err)
	}
	if !sig.IsTrue() {
		t.Fatal("seeded bug missing: signaling not stuck high")
	}
	// And the fixed design drives it low for FEQ.
	fixed := makeSim(t, false)
	runCompare(fixed, RmFEQ, QNaN, One)
	sigF, _ := fixed.Peek("FPToInt.dcmp.io_signaling")
	if sigF.IsTrue() {
		t.Fatal("fixed design still signaling for FEQ")
	}
}

// Property: on non-NaN inputs, buggy and fixed designs agree with the
// model and each other — the bug only affects NaN exception flags.
func TestOrderedComparesProperty(t *testing.T) {
	buggy := makeSim(t, true)
	fixed := makeSim(t, false)
	f := func(aBits, bBits uint32, opSel uint8) bool {
		// Avoid NaNs (and infinities for simplicity of the magnitude
		// comparison domain).
		fa := math.Float32frombits(aBits)
		fb := math.Float32frombits(bBits)
		if aBits&0x7F800000 == 0x7F800000 || bBits&0x7F800000 == 0x7F800000 {
			return true
		}
		if fa != fa || fb != fb {
			return true
		}
		op := int(opSel) % 3
		r1, f1 := runCompare(buggy, op, aBits, bBits)
		r2, f2 := runCompare(fixed, op, aBits, bBits)
		rm, fm := Model(op, aBits, bBits)
		return r1 == rm && r2 == rm && f1 == fm && f2 == fm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestModelFlagSemantics(t *testing.T) {
	// feq quiet-NaN: no flags.
	if _, f := Model(RmFEQ, QNaN, One); f != 0 {
		t.Fatalf("feq qNaN flags = %#x", f)
	}
	// feq signaling-NaN: invalid.
	if _, f := Model(RmFEQ, SNaN, One); f != 0x10 {
		t.Fatalf("feq sNaN flags = %#x", f)
	}
	// flt any-NaN: invalid.
	if _, f := Model(RmFLT, QNaN, One); f != 0x10 {
		t.Fatalf("flt qNaN flags = %#x", f)
	}
	if r, _ := Model(RmFLE, One, One); r != 1 {
		t.Fatal("1 <= 1 false")
	}
}
