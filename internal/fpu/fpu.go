// Package fpu reproduces the paper's §4.2 case study: a floating-point
// compare path (the RocketChip FPToInt/dcmp structure of Listing 3)
// generated with this repo's HGF, with the known bug seeded —
// dcmp.io.signaling is permanently asserted, so quiet compares (FEQ)
// incorrectly raise the invalid-operation exception on quiet NaNs. The
// example in examples/fpu_debug uses hgdb to find it exactly as the
// paper describes: break inside the `when(in.wflags)` block, inspect
// the reconstructed dcmp.io bundle, and see signaling stuck at 1.
package fpu

import (
	"math"

	"repro/internal/generator"
	"repro/internal/ir"
)

// Rounding-mode encodings used by the compare path (the low bits of
// the instruction's rm field select the comparison kind, as in Rocket's
// FPToInt): fle=0, flt=1, feq=2.
const (
	RmFLE = 0
	RmFLT = 1
	RmFEQ = 2
)

// BuildFCmp generates the recoded-float comparator ("dcmp" in the
// paper's listing): IEEE-754 single inputs, signaling control, ordered
// compare outputs and exception flags.
func BuildFCmp(c *generator.Circuit) *generator.ModuleBuilder {
	m := c.NewModule("FCmp")
	u32 := ir.UIntType(32)
	a := m.Input("io_a", u32)
	b := m.Input("io_b", u32)
	signaling := m.Input("io_signaling", ir.UIntType(1))
	ltOut := m.Output("io_lt", ir.UIntType(1))
	eqOut := m.Output("io_eq", ir.UIntType(1))
	excOut := m.Output("io_exceptionFlags", ir.UIntType(5))

	// Field extraction.
	signA := m.Node("signA", a.Bit(31))
	expA := m.Node("expA", a.Bits(30, 23))
	manA := m.Node("manA", a.Bits(22, 0))
	signB := m.Node("signB", b.Bit(31))
	expB := m.Node("expB", b.Bits(30, 23))
	manB := m.Node("manB", b.Bits(22, 0))

	expMax := m.Lit(0xFF, 8)
	isNaNA := m.Node("isNaNA", expA.Eq(expMax).And(manA.OrR()))
	isNaNB := m.Node("isNaNB", expB.Eq(expMax).And(manB.OrR()))
	// IEEE: quiet bit is mantissa MSB; a NaN with it CLEAR is signaling.
	isSNaNA := m.Node("isSNaNA", isNaNA.And(manA.Bit(22).Not()))
	isSNaNB := m.Node("isSNaNB", isNaNB.And(manB.Bit(22).Not()))
	anyNaN := m.Node("anyNaN", isNaNA.Or(isNaNB))

	// Invalid-operation: signaling NaN always; any NaN under a
	// signaling comparison.
	invalid := m.Wire("invalid", ir.UIntType(1))
	invalid.Set(isSNaNA.Or(isSNaNB))
	m.When(signaling.And(anyNaN), func() {
		invalid.Set(m.Lit(1, 1))
	})

	// Ordered comparison on sign/magnitude. +0 == -0.
	magA := m.Node("magA", a.Bits(30, 0))
	magB := m.Node("magB", b.Bits(30, 0))
	bothZero := m.Node("bothZero", magA.Eq(m.Lit(0, 31)).And(magB.Eq(m.Lit(0, 31))))

	ltMag := m.Node("ltMag", magA.Lt(magB))
	gtMag := m.Node("gtMag", magA.Gt(magB))

	lt := m.Wire("lt", ir.UIntType(1))
	eq := m.Wire("eq", ir.UIntType(1))
	lt.Set(m.Lit(0, 1))
	eq.Set(m.Lit(0, 1))
	m.When(anyNaN.Not(), func() {
		m.When(bothZero, func() {
			eq.Set(m.Lit(1, 1))
		}).Otherwise(func() {
			m.When(signA.And(signB.Not()), func() { // negative < positive
				lt.Set(m.Lit(1, 1))
			})
			m.When(signA.Not().And(signB.Not()), func() { // both positive
				lt.Set(ltMag)
			})
			m.When(signA.And(signB), func() { // both negative: reversed
				lt.Set(gtMag)
			})
			m.When(a.Eq(b), func() {
				eq.Set(m.Lit(1, 1))
				lt.Set(m.Lit(0, 1))
			})
		})
	})

	ltOut.Set(lt)
	eqOut.Set(eq)
	// Flags: {invalid, divide-by-zero, overflow, underflow, inexact};
	// only invalid applies to compares.
	excOut.Set(invalid.Cat(m.Lit(0, 4)))
	return m
}

// BuildFPToInt generates the wrapper of the paper's Listing 3. When
// buggy is true the known RocketChip bug is seeded:
//
//	dcmp.io.signaling := Bool(true)
//
// instead of deriving signaling from the comparison kind (FEQ must be
// quiet). The fixed version drives signaling with !rm[1].
func BuildFPToInt(c *generator.Circuit, buggy bool) *generator.ModuleBuilder {
	dcmpMod := BuildFCmp(c)
	m := c.NewModule("FPToInt")
	u32 := ir.UIntType(32)
	in1 := m.Input("io_in1", u32)
	in2 := m.Input("io_in2", u32)
	rm := m.Input("io_rm", ir.UIntType(2))
	wflags := m.Input("io_wflags", ir.UIntType(1))
	toint := m.Output("io_out_toint", u32)
	exc := m.Output("io_out_exc", ir.UIntType(5))

	dcmp := m.Instance("dcmp", dcmpMod)
	dcmp.IO("io_a").Set(in1)
	dcmp.IO("io_b").Set(in2)
	if buggy {
		dcmp.IO("io_signaling").Set(m.Bool(true)) // Listing 3: the bug
	} else {
		// FEQ (rm=2) is a quiet comparison; FLT/FLE are signaling.
		dcmp.IO("io_signaling").Set(rm.Bit(1).Not())
	}

	store := m.Node("store", in1) // the pass-through path of Listing 3/4
	toint.Set(store)
	exc.Set(m.Lit(0, 5))

	m.When(wflags, func() { // feq/flt/fle
		// toint := (~in.rm & Cat(dcmp.io.lt, dcmp.io.eq)).orR
		cmpBits := dcmp.IO("io_lt").Cat(dcmp.IO("io_eq"))
		sel := rm.Not().And(cmpBits)
		isEq := rm.Eq(m.Lit(RmFEQ, 2))
		result := m.Wire("result", ir.UIntType(1))
		result.Set(sel.OrR())
		m.When(isEq, func() {
			result.Set(dcmp.IO("io_eq"))
		})
		toint.Set(result.Pad(32))
		exc.Set(dcmp.IO("io_exceptionFlags"))
	})
	return m
}

// BuildCircuit builds the complete FPToInt circuit (top: FPToInt).
func BuildCircuit(buggy bool) (*ir.Circuit, error) {
	c := generator.NewCircuit("FPToInt")
	BuildFPToInt(c, buggy)
	return c.Build()
}

// Model is the functional (software) model the paper compares the
// simulation against. It returns the compare result and the expected
// exception flags for the given operation.
func Model(op int, a, b uint32) (result uint32, flags uint32) {
	fa := math.Float32frombits(a)
	fb := math.Float32frombits(b)
	aNaN := isNaN32(a)
	bNaN := isNaN32(b)
	sNaN := isSNaN32(a) || isSNaN32(b)
	switch op {
	case RmFEQ:
		// Quiet: invalid only for signaling NaN operands.
		if sNaN {
			flags = 0x10
		}
		if !aNaN && !bNaN && fa == fb {
			result = 1
		}
	case RmFLT:
		if aNaN || bNaN {
			flags = 0x10
		} else if fa < fb {
			result = 1
		}
	case RmFLE:
		if aNaN || bNaN {
			flags = 0x10
		} else if fa <= fb {
			result = 1
		}
	}
	return result, flags
}

func isNaN32(bits uint32) bool {
	return bits&0x7F800000 == 0x7F800000 && bits&0x007FFFFF != 0
}

func isSNaN32(bits uint32) bool {
	return isNaN32(bits) && bits&0x00400000 == 0
}

// Handy constants for tests and the example.
const (
	QNaN     = 0x7FC00000 // canonical quiet NaN
	SNaN     = 0x7F800001 // a signaling NaN
	One      = 0x3F800000 // 1.0f
	Two      = 0x40000000 // 2.0f
	NegOne   = 0xBF800000 // -1.0f
	PlusZero = 0x00000000
	NegZero  = 0x80000000
)
