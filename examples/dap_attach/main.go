// DAP attach: debugging hgdb from any DAP-capable editor.
//
// This walkthrough stands up the full editor pipeline in one process:
// a simulated design served by the hgdb debug server, the DAP adapter
// (the same internal/dap engine behind cmd/hgdb-dap) bridging it onto
// a TCP listener, and a minimal scripted DAP client standing in for
// VS Code — initialize, attach, setBreakpoints, configurationDone,
// then a stopped/inspect/continue loop over the Debug Adapter
// Protocol. Point a real editor at cmd/hgdb-dap to get the identical
// session interactively (see this example's README).
//
// Run: go run ./examples/dap_attach
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"runtime"

	"repro/internal/core"
	"repro/internal/dap"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vpi"
)

func here() int {
	var pcs [1]uintptr
	runtime.Callers(2, pcs[:])
	f, _ := runtime.CallersFrames(pcs[:1]).Next()
	return f.Line
}

func main() {
	// 1. A small design: an enabled 8-bit counter with a bundle output,
	// so the DAP variables tree shows a structured PortBundle.
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	io := m.Output("io", ir.Bundle{Fields: []ir.Field{
		{Name: "bits", Type: ir.UIntType(8)},
		{Name: "valid", Type: ir.UIntType(1)},
	}})
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	var incLine int
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8))) // <- breakpoint target
		incLine = here() - 1
	})
	io.Field("bits").Set(count)
	io.Field("valid").Set(en)

	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		log.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		log.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	s := sim.New(nl)

	// 2. The hgdb debug server, as hgdb-sim would run it.
	rt, err := core.New(vpi.NewSimBackend(s), table)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(rt, nil)
	hgdbAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hgdb server on %s\n", hgdbAddr)

	// 3. The DAP adapter on a TCP listener — exactly what
	// `hgdb-dap -attach <addr> -listen :4711` does.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DAP listener on %s (an editor would connect here)\n", ln.Addr())
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ad, err := dap.New(conn, dap.Options{Addr: hgdbAddr})
		if err != nil {
			log.Fatalf("adapter: %v", err)
		}
		ad.Serve()
	}()

	// 4. A scripted DAP client, standing in for the editor.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	dc := dap.NewConn(conn)
	events := []*dap.Message{}
	request := func(command string, args any) *dap.Message {
		seq, err := dc.SendRequest(command, args)
		if err != nil {
			log.Fatal(err)
		}
		for {
			msg, err := dc.ReadMessage()
			if err != nil {
				log.Fatal(err)
			}
			if msg.Type == "event" {
				events = append(events, msg)
				continue
			}
			if msg.RequestSeq != seq || !msg.Success {
				log.Fatalf("%s failed: %s", command, msg.Msg)
			}
			return msg
		}
	}
	waitEvent := func(name string) *dap.Message {
		for i, ev := range events {
			if ev.Event == name {
				events = append(events[:i], events[i+1:]...)
				return ev
			}
		}
		for {
			msg, err := dc.ReadMessage()
			if err != nil {
				log.Fatal(err)
			}
			if msg.Type == "event" && msg.Event == name {
				return msg
			}
			if msg.Type == "event" {
				events = append(events, msg)
			}
		}
	}

	resp := request("initialize", map[string]any{"adapterID": "hgdb", "clientID": "example"})
	var caps dap.Capabilities
	json.Unmarshal(resp.Body, &caps)
	fmt.Printf("initialize: configurationDone=%v conditionalBreakpoints=%v stepBack=%v\n",
		caps.SupportsConfigurationDoneRequest, caps.SupportsConditionalBreakpoints, caps.SupportsStepBack)

	request("attach", nil)
	waitEvent("initialized")

	resp = request("setBreakpoints", dap.SetBreakpointsArguments{
		Source:      dap.Source{Path: "main.go"},
		Breakpoints: []dap.SourceBreakpoint{{Line: incLine}, {Line: incLine + 100}},
	})
	var bps dap.SetBreakpointsResponse
	json.Unmarshal(resp.Body, &bps)
	for _, bp := range bps.Breakpoints {
		fmt.Printf("breakpoint line %d: verified=%v %s\n", bp.Line, bp.Verified, bp.Message)
	}
	request("configurationDone", nil)

	// 5. Drive the simulation; walk three stops over the protocol.
	go func() {
		s.Reset("Counter.reset", 1)
		s.Poke("Counter.en", 1)
		s.Run(3)
	}()
	for hit := 0; hit < 3; hit++ {
		var stopped dap.StoppedEvent
		json.Unmarshal(waitEvent("stopped").Body, &stopped)
		fmt.Printf("stopped: reason=%s time=%d\n", stopped.Reason, stopped.Time)

		resp = request("stackTrace", map[string]any{"threadId": stopped.ThreadID})
		var st dap.StackTraceResponse
		json.Unmarshal(resp.Body, &st)
		frame := st.StackFrames[0]
		fmt.Printf("  frame: %s\n", frame.Name)

		resp = request("scopes", map[string]any{"frameId": frame.ID})
		var scopes dap.ScopesResponse
		json.Unmarshal(resp.Body, &scopes)
		for _, sc := range scopes.Scopes {
			if sc.VariablesReference == 0 {
				continue
			}
			resp = request("variables", map[string]any{"variablesReference": sc.VariablesReference})
			var vars dap.VariablesResponse
			json.Unmarshal(resp.Body, &vars)
			for _, v := range vars.Variables {
				fmt.Printf("  %s %s = %s\n", sc.Name, v.Name, v.Value)
				if v.VariablesReference != 0 {
					// Structured PortBundle: expand one level (§4.2).
					r := request("variables", map[string]any{"variablesReference": v.VariablesReference})
					var kids dap.VariablesResponse
					json.Unmarshal(r.Body, &kids)
					for _, k := range kids.Variables {
						fmt.Printf("    .%s = %s\n", k.Name, k.Value)
					}
				}
			}
		}
		request("continue", map[string]any{"threadId": stopped.ThreadID})
		waitEvent("continued")
	}

	request("disconnect", nil)
	waitEvent("terminated")
	fmt.Println("DAP session closed; simulation ran to completion")
	srv.Close()
}
