// fpu_debug replays the paper's §4.2 case study end to end: a known
// bug in the floating-point compare path (dcmp.io.signaling permanently
// asserted) makes the FPU output mismatch the functional model. We find
// it with hgdb: break inside the when(wflags) block, inspect the
// reconstructed dcmp.io bundle, spot the stuck signal — then build the
// fixed design and show the flags match.
//
// Run: go run ./examples/fpu_debug
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/fpu"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vpi"
)

func build(buggy bool) (*sim.Simulator, *core.Runtime, *symtab.Table, *passes.Compilation) {
	circ, err := fpu.BuildCircuit(buggy)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := passes.Compile(circ, false)
	if err != nil {
		log.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		log.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	s := sim.New(nl)
	rt, err := core.New(vpi.NewSimBackend(s), table)
	if err != nil {
		log.Fatal(err)
	}
	return s, rt, table, comp
}

func compare(s *sim.Simulator, op int, a, b uint64) (uint64, uint64) {
	s.Poke("FPToInt.io_rm", uint64(op))
	s.Poke("FPToInt.io_in1", a)
	s.Poke("FPToInt.io_in2", b)
	s.Poke("FPToInt.io_wflags", 1)
	s.Step()
	r, _ := s.Peek("FPToInt.io_out_toint")
	f, _ := s.Peek("FPToInt.io_out_exc")
	return r.Bits, f.Bits
}

func main() {
	fmt.Println("=== §4.2 case study: debugging the FPU compare bug with hgdb ===")

	// Step 1: the failing test. feq(qNaN, 1.0) must NOT raise invalid.
	s, rt, table, comp := build(true)
	modelR, modelF := fpu.Model(fpu.RmFEQ, fpu.QNaN, fpu.One)
	gotR, gotF := compare(s, fpu.RmFEQ, fpu.QNaN, fpu.One)
	fmt.Printf("\nfeq(qNaN, 1.0):   RTL result=%d flags=%#02x | model result=%d flags=%#02x\n",
		gotR, gotF, modelR, modelF)
	if gotF == uint64(modelF) {
		log.Fatal("expected a mismatch — bug not present?")
	}
	fmt.Println("-> exception flags MISMATCH the functional model; time to debug.")

	// Step 2: set a tentative breakpoint on the FP control logic — the
	// statement inside the when(wflags) block that drives the flags.
	var excLine int
	for _, line := range table.Lines("fpu.go") {
		for _, bp := range table.BreakpointsAt("fpu.go", line) {
			if strings.Contains(bp.EnableSrc, "wflags") {
				excLine = line
			}
		}
	}
	if excLine == 0 {
		log.Fatal("no breakpoint inside the wflags block")
	}
	fmt.Printf("\nsetting breakpoint at fpu.go:%d (inside when(io_wflags))\n", excLine)
	if _, err := rt.AddBreakpoint("fpu.go", excLine, ""); err != nil {
		log.Fatal(err)
	}

	rt.SetHandler(func(ev *core.StopEvent) core.Command {
		fmt.Printf("\nbreakpoint hit at %s:%d (cycle %d)\n", ev.File, ev.Line, ev.Time)
		th := ev.Threads[0]
		// The paper: "hgdb has the ability to reconstruct structured
		// variables from a list of flattened RTL signals" — show the
		// dcmp instance's io bundle the same way.
		fmt.Println("  generator variables (dcmp.io reconstructed):")
		dcmpID, _ := table.InstanceIDByName("FPToInt.dcmp")
		var vars []core.Variable
		for _, b := range table.GeneratorVars(dcmpID) {
			v, err := rt.Backend().GetValue("FPToInt.dcmp." + b.RTL)
			if err != nil {
				continue
			}
			vars = append(vars, core.Variable{Name: b.Name, Value: v.Bits, Width: v.Width})
		}
		for _, sv := range core.Structure(vars) {
			printVar(sv, "    ")
		}
		_ = th
		return core.CmdDetach
	})

	// Re-run the failing vector; the breakpoint fires.
	compare(s, fpu.RmFEQ, fpu.QNaN, fpu.One)

	sig, _ := s.Peek("FPToInt.dcmp.io_signaling")
	fmt.Printf("\n-> dcmp.io.signaling = %d during a QUIET comparison (feq).\n", sig.Bits)
	fmt.Println("   \"With a quick glance, we can see that dcmp.io.signaling is not")
	fmt.Println("    set properly since it is permanently asserted.\" (§4.2)")

	// Step 3: show why the RTL was hopeless to read directly (Listing 4).
	verilog, err := rtl.VerilogString(comp.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfor contrast, the generated RTL around toint (Listing 4 flavor):")
	count := 0
	for _, line := range strings.Split(verilog, "\n") {
		if strings.Contains(line, "_GEN_") || strings.Contains(line, "_T_") {
			fmt.Println("   ", strings.TrimSpace(line))
			count++
			if count >= 6 {
				break
			}
		}
	}

	// Step 4: apply the fix and verify against the model.
	fmt.Println("\napplying the fix: dcmp.io.signaling := !rm[1]")
	s2, _, _, _ := build(false)
	fixedR, fixedF := compare(s2, fpu.RmFEQ, fpu.QNaN, fpu.One)
	fmt.Printf("feq(qNaN, 1.0):   RTL result=%d flags=%#02x | model result=%d flags=%#02x\n",
		fixedR, fixedF, modelR, modelF)
	if fixedF != uint64(modelF) || fixedR != uint64(modelR) {
		log.Fatal("fix did not work")
	}
	fmt.Println("-> flags match the functional model. Bug fixed.")
}

func printVar(sv core.StructuredVar, indent string) {
	if sv.Leaf != nil && len(sv.Children) == 0 {
		fmt.Printf("%s%s = %d\n", indent, sv.Name, sv.Leaf.Value)
		return
	}
	fmt.Printf("%s%s:\n", indent, sv.Name)
	for _, c := range sv.Children {
		printVar(c, indent+"  ")
	}
}
