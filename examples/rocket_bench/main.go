// rocket_bench regenerates the paper's Figure 5: simulation time for
// the ten RISC-V benchmarks under {baseline, baseline+hgdb, debug,
// debug+hgdb}, normalized to baseline, plus the §4.1 symbol-table-size
// statistic. Every run's architectural results are validated against
// the Go reference models, so the numbers are measurements of correct
// executions.
//
// Run: go run ./examples/rocket_bench [-repeat N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	repeat := flag.Int("repeat", 3, "runs per measurement")
	flag.Parse()

	fmt.Println("=== Figure 5: RocketChip-suite simulation time (normalized to baseline) ===")
	fmt.Println()
	rows, err := bench.RunFig5(*repeat)
	if err != nil {
		log.Fatal(err)
	}
	bench.PrintFig5(os.Stdout, rows)

	worstBase, worstDebug := 0.0, 0.0
	meanBase, meanDebug := 0.0, 0.0
	for _, r := range rows {
		ob, od := r.HgdbOverhead(false), r.HgdbOverhead(true)
		meanBase += ob
		meanDebug += od
		if ob > worstBase {
			worstBase = ob
		}
		if od > worstDebug {
			worstDebug = od
		}
	}
	meanBase /= float64(len(rows))
	meanDebug /= float64(len(rows))
	fmt.Printf("\nmean hgdb overhead across workloads: %+.1f%% (baseline), %+.1f%% (debug)\n",
		100*meanBase, 100*meanDebug)
	fmt.Printf("worst single-workload reading:       %+.1f%% (baseline), %+.1f%% (debug)\n",
		100*worstBase, 100*worstDebug)
	fmt.Println("paper's claim: \"at no point does hgdb overhead exceed 5% of runtime\";")
	fmt.Println("the mean is the robust estimate here — single-workload readings carry")
	fmt.Println("the host's ±5-8% wall-clock noise (see BenchmarkCallbackOverhead for")
	fmt.Println("the noise-free per-cycle cost of the idle hgdb callback)")

	fmt.Println("\n=== §4.1: symbol table / generated RTL size, optimized vs debug ===")
	st, err := bench.SymtabSizes()
	if err != nil {
		log.Fatal(err)
	}
	pct := func(a, b int) float64 { return 100 * (float64(b)/float64(a) - 1) }
	fmt.Printf("symbol table rows:      %6d -> %6d  (+%.0f%%)\n", st.OptRows, st.DbgRows, pct(st.OptRows, st.DbgRows))
	fmt.Printf("distinct RTL variables: %6d -> %6d  (+%.0f%%)\n", st.OptVars, st.DbgVars, pct(st.OptVars, st.DbgVars))
	fmt.Printf("netlist signals:        %6d -> %6d  (+%.0f%%)\n", st.OptSignals, st.DbgSignals, pct(st.OptSignals, st.DbgSignals))
	fmt.Println("paper reports ≈30% symbol-table growth with debug mode on; our")
	fmt.Println("generated-RTL bloat matches that shape, while table-row growth is")
	fmt.Println("smaller because this core has less optimizable logic than RocketChip")
}
