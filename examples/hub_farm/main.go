// Hub farm: many runtimes behind one endpoint.
//
// An in-process debug hub hosts a small farm — one live counter
// simulation plus two replay sessions over the same recorded trace —
// and a hub control session launches, lists, and evicts them while
// regular debugger sessions attach to individual runtimes through the
// same endpoint (?runtime=<id> on the upgrade URL). The two replays
// load their symbol table through the hub's content-keyed shared
// cache: one parse, one cache hit.
//
// Run: go run ./examples/hub_farm
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/client"
	"repro/internal/generator"
	"repro/internal/hub"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/proto"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vcd"
)

// recordFixture simulates the counter design once and writes the
// trace + symbol table a replay runtime needs — the files any real
// deployment would have lying around from a failed regression run.
func recordFixture(dir string) (vcdPath, symtabPath string) {
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8)))
	})
	out.Set(count)

	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		log.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		log.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	s := sim.New(nl)

	vcdPath = filepath.Join(dir, "counter.vcd")
	vf, err := os.Create(vcdPath)
	if err != nil {
		log.Fatal(err)
	}
	rec := vcd.NewRecorder(s, vf)
	s.Reset("Counter.reset", 2)
	s.Poke("Counter.en", 1)
	s.Run(64)
	if err := rec.Flush(); err != nil {
		log.Fatal(err)
	}
	vf.Close()

	symtabPath = filepath.Join(dir, "counter.symtab")
	sf, err := os.Create(symtabPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := table.Save(sf); err != nil {
		log.Fatal(err)
	}
	sf.Close()
	return vcdPath, symtabPath
}

// discoverBreakLine asks a runtime session for any breakable
// file:line through the info surface — the generic way to arm a
// breakpoint on a design this client did not build itself.
func discoverBreakLine(cl *client.Client) (string, int) {
	raw, err := cl.Info("files", "")
	if err != nil {
		log.Fatal(err)
	}
	var files []string
	if err := json.Unmarshal(raw, &files); err != nil || len(files) == 0 {
		log.Fatalf("no breakable files (%s)", raw)
	}
	raw, err = cl.Info("lines", files[0])
	if err != nil {
		log.Fatal(err)
	}
	var lines []int
	if err := json.Unmarshal(raw, &lines); err != nil || len(lines) == 0 {
		log.Fatalf("no breakable lines in %s (%s)", files[0], raw)
	}
	return files[0], lines[0]
}

func printListing(hc *client.HubClient) {
	infos, err := hc.Runtimes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %-4s %-7s %-8s %-8s %-7s %s\n",
		"ID", "KIND", "STATE", "TOP", "REVERSE", "SOURCE")
	for _, info := range infos {
		shared := ""
		if info.SymtabShared {
			shared = " (shared symtab)"
		}
		fmt.Printf("   %-4s %-7s %-8s %-8s %-7v %s%s\n",
			info.ID, info.Kind, info.State, info.Top, info.Reverse,
			filepath.Base(info.Source), shared)
	}
}

func main() {
	dir, err := os.MkdirTemp("", "hub_farm")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	vcdPath, symtabPath := recordFixture(dir)

	// 1. One hub, one endpoint. cmd/hgdb-hub is this with a flag parser.
	h := hub.New(hub.Options{})
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	fmt.Printf("hub listening on %s\n", addr)

	// 2. A control session launches the farm: one live simulation, two
	// replays over the same recorded trace.
	hc, err := client.DialHub(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer hc.Close()

	for _, spec := range []proto.RuntimeSpec{
		{Name: "c0", Kind: "sim", Design: "counter"},
		{Name: "r0", Kind: "replay", VCD: vcdPath, Symtab: symtabPath},
		{Name: "r1", Kind: "replay", VCD: vcdPath, Symtab: symtabPath},
	} {
		if _, err := hc.Launch(spec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nregistry after launch:")
	printListing(hc)

	// The two replays share one symbol table: the second Acquire of the
	// same content is a cache hit on the first one's parsed table.
	stats := h.SymtabStats()
	fmt.Printf("\nshared symtab cache: %d miss, %d hit, %d live table(s)\n",
		stats.Misses, stats.Hits, stats.Live)

	// 3. Debug the live simulation — a plain client session, routed to
	// c0 by the hub; everything past the dial is the standalone flow.
	cl, err := hc.Attach("c0")
	if err != nil {
		log.Fatal(err)
	}
	file, line := discoverBreakLine(cl)
	if _, err := cl.AddBreakpoint(file, line, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nc0 (live sim), breakpoint at %s:%d:\n", file, line)
	for i := 0; i < 3; i++ {
		stop, err := cl.WaitStop(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		val, err := cl.GetValue("Counter.count")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   stop at t=%d  count=%d\n", stop.Time, val.Value)
		if err := cl.Command("continue"); err != nil {
			log.Fatal(err)
		}
	}
	if err := cl.ClearBreakpoints(); err != nil {
		log.Fatal(err)
	}
	if err := cl.Command("continue"); err != nil {
		log.Fatal(err)
	}
	cl.Close()

	// 4. Debug a replay — same endpoint, different runtime, and this
	// one can step backwards. The hub rolls the trace forward (wrapping
	// at the end) so the breakpoint fires even on a late attach.
	rcl, err := hc.Attach("r0")
	if err != nil {
		log.Fatal(err)
	}
	file, line = discoverBreakLine(rcl)
	if _, err := rcl.AddBreakpoint(file, line, ""); err != nil {
		log.Fatal(err)
	}
	stop, err := rcl.WaitStop(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nr0 (replay), stop at t=%d; reverse-step:\n", stop.Time)
	if err := rcl.Command("reverse-step"); err != nil {
		log.Fatal(err)
	}
	back, err := rcl.WaitStop(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   now at t=%d (went backwards: %v)\n", back.Time, back.Time <= stop.Time)
	if err := rcl.ClearBreakpoints(); err != nil {
		log.Fatal(err)
	}
	if err := rcl.Command("continue"); err != nil {
		log.Fatal(err)
	}
	rcl.Close()

	// 5. Evict r1: its sessions (none here) get goodbyes, its trace
	// store closes, its shared symbol-table handle is released, and the
	// registry forgets it. Siblings are untouched.
	if err := hc.Evict("r1"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nregistry after evicting r1:")
	printListing(hc)
}
