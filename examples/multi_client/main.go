// Multi-client debugging: one runtime, several debugger sessions.
//
// A controller and two observers attach to the same simulated design
// over the WebSocket protocol. Every session receives the same stop
// broadcasts; only the controller resumes the simulation; the
// observers keep reading state even while the design is running
// (served off the runtime's clock-edge query queue, never racing the
// scheduler); finally the controller releases control and the oldest
// observer inherits it.
//
// Run: go run ./examples/multi_client
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vpi"
)

func here() int {
	var pcs [1]uintptr
	runtime.Callers(2, pcs[:])
	f, _ := runtime.CallersFrames(pcs[:1]).Next()
	return f.Line
}

func main() {
	// 1. A small design: an enabled 8-bit counter.
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	var incLine int
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8))) // <- breakpoint target
		incLine = here() - 1
	})
	out.Set(count)

	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		log.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		log.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	s := sim.New(nl)

	// 2. Serve the runtime.
	rt, err := core.New(vpi.NewSimBackend(s), table)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(rt, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("runtime serving on %s\n\n", addr)

	// 3. Attach three debugger sessions. First one in owns control.
	attach := func(name string) *client.Client {
		cl, err := client.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := cl.WaitEvent("welcome", 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s attached as session %d [%s]\n", name, ev.SessionID, ev.Role)
		return cl
	}
	ctrl := attach("controller")
	obs1 := attach("observer-1")
	obs2 := attach("observer-2")

	// 4. Only the controller may arm breakpoints.
	if _, err := obs1.AddBreakpoint("main.go", incLine, ""); err != nil {
		fmt.Printf("\nobserver-1 tried to arm a breakpoint: %v\n", err)
	}
	if _, err := ctrl.AddBreakpoint("main.go", incLine, "count == 2"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller armed main.go:%d if count == 2\n\n", incLine)

	// 5. Run; the stop is broadcast to every session.
	go func() {
		s.Poke("Counter.en", 1)
		s.Run(5)
	}()
	for _, cl := range []*client.Client{ctrl, obs1, obs2} {
		ev, err := cl.WaitEvent("stop", 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session %d saw stop at %s:%d (time %d, broadcast #%d)\n",
			cl.SessionID(), ev.Stop.File, ev.Stop.Line, ev.Stop.Time, ev.Seq)
	}

	// An observer can read while stopped; it cannot resume.
	v, err := obs1.GetValue("Counter.count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobserver-1 reads count = %d at the stop\n", v.Value)
	if err := obs2.Command("continue"); err != nil {
		fmt.Printf("observer-2 tried to continue: %v\n", err)
	}
	if err := ctrl.Command("continue"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("controller resumed the simulation")

	// 6. Observer reads while the design is free-running.
	if _, err := ctrl.RemoveBreakpoint("main.go", incLine); err != nil {
		log.Fatal(err)
	}
	var running atomic.Bool
	running.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for running.Load() {
			s.Run(1)
		}
	}()
	for i := 0; i < 3; i++ {
		v, err := obs1.GetValue("Counter.count")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observer-1 mid-run: count = %3d at time %d\n", v.Value, v.Time)
		time.Sleep(10 * time.Millisecond)
	}
	running.Store(false)
	<-done

	// 7. Hand control over: the oldest observer inherits it.
	if err := ctrl.Release(); err != nil {
		log.Fatal(err)
	}
	if _, err := obs1.WaitEvent("control", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter release: observer-1 role = %s, controller session = %d\n",
		obs1.Role(), obs1.Controller())
	infos, err := obs1.Sessions()
	if err != nil {
		log.Fatal(err)
	}
	for _, si := range infos {
		fmt.Printf("  session %d  %s\n", si.ID, si.Role)
	}

	ctrl.Close()
	obs1.Close()
	obs2.Close()
	fmt.Println("\ndone")
}
