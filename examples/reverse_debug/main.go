// reverse_debug demonstrates §3.2's reverse debugging: record a VCD
// trace of a live simulation, then replay it with the hgdb runtime on
// the trace backend — stepping backwards through statements within a
// cycle (intra-cycle reverse) and across cycle boundaries (full
// reverse, via the backend's SetTime).
//
// Run: go run ./examples/reverse_debug
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/replay"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vcd"
)

func here() int {
	var pcs [1]uintptr
	runtime.Callers(2, pcs[:])
	f, _ := runtime.CallersFrames(pcs[:1]).Next()
	return f.Line
}

func main() {
	// A counter with two statements per cycle so intra-cycle reverse is
	// visible.
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	nxt := m.Wire("nxt", ir.UIntType(8))
	var defLine, incLine int
	nxt.Set(count)
	defLine = here() - 1
	m.When(en, func() {
		nxt.Set(count.AddMod(m.Lit(1, 8)))
		incLine = here() - 1
	})
	count.Set(nxt)
	out.Set(count)

	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		log.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		log.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: run live and record a trace (any simulator could have
	// produced this VCD — including a commercial one).
	s := sim.New(nl)
	var buf bytes.Buffer
	rec := vcd.NewRecorder(s, &buf)
	s.Reset("Counter.reset", 1)
	s.Poke("Counter.en", 1)
	s.Run(20)
	if err := rec.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d cycles of trace (%d bytes of VCD)\n", s.Time(), buf.Len())

	// Phase 2: replay with reverse debugging, on the checkpointed block
	// store (the scalable trace path — hgdb-replay uses the same one).
	// A tiny block size and checkpoint interval make this short trace
	// still cross several boundaries.
	store, err := vcd.ParseStore(&buf, vcd.StoreOptions{BlockSize: 4})
	if err != nil {
		log.Fatal(err)
	}
	eng := replay.NewStore(store, replay.WithCheckpointInterval(4))
	rt, err := core.New(eng, table)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("main.go", incLine, ""); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbreakpoint at main.go:%d (the increment); default line is %d\n", incLine, defLine)
	fmt.Println("jumping to cycle 10 and replaying forward until the hit,")
	fmt.Println("then reverse-stepping backwards through time:")

	steps := 0
	rt.SetHandler(func(ev *core.StopEvent) core.Command {
		var cnt uint64
		for _, v := range ev.Threads[0].Locals {
			if v.Name == "count" {
				cnt = v.Value
			}
		}
		dir := "->"
		if ev.Reverse {
			dir = "<-"
		}
		fmt.Printf("  %s stop at line %d, cycle %2d, count = %d\n", dir, ev.Line, ev.Time, cnt)
		steps++
		if steps < 8 {
			return core.CmdReverseStep
		}
		return core.CmdDetach
	})

	eng.SetTime(10)
	eng.StepForward()
	fmt.Printf("\nreplay position after session: cycle %d (%d checkpoints back the reverse steps)\n",
		eng.Time(), eng.Checkpoints())
	fmt.Println("note: count values DECREASE across the reverse steps — execution")
	fmt.Println("appears to run backwards, paper §3.2's illusion, and crossing the")
	fmt.Println("cycle boundary used the trace backend's SetTime.")
}
