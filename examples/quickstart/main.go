// Quickstart: generate a small design with the HGF, compile it with
// symbol extraction, simulate it, and debug it at source level — the
// whole hgdb flow in one file.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vpi"
)

func here() int {
	var pcs [1]uintptr
	runtime.Callers(2, pcs[:])
	f, _ := runtime.CallersFrames(pcs[:1]).Next()
	return f.Line
}

func main() {
	// 1. Describe hardware in Go (the HGF frontend). Every Set and When
	//    records the Go source line — those lines become breakpoints.
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	var incLine int
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8))) // <- we will break here
		incLine = here() - 1
	})
	out.Set(count)

	// 2. Compile: lowering, SSA (paper §3.1), optimization, and symbol
	//    table extraction (paper Algorithm 1).
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		log.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("symbol table: %s\n", table.Stats())
	fmt.Printf("breakable lines in main.go: %v\n\n", table.Lines("main.go"))

	// 3. Elaborate and simulate.
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	s := sim.New(nl)

	// 4. Attach the hgdb runtime and set a source-level breakpoint with
	//    a user condition.
	rt, err := core.New(vpi.NewSimBackend(s), table)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("main.go", incLine, "count >= 3"); err != nil {
		log.Fatal(err)
	}
	stops := 0
	rt.SetHandler(func(ev *core.StopEvent) core.Command {
		stops++
		fmt.Printf("stop %d at %s:%d (cycle %d)\n", stops, ev.File, ev.Line, ev.Time)
		for _, th := range ev.Threads {
			fmt.Printf("  instance %s\n", th.Instance)
			for _, v := range th.Locals {
				fmt.Printf("    %-8s = %d\n", v.Name, v.Value)
			}
		}
		if stops >= 3 {
			return core.CmdDetach
		}
		return core.CmdContinue
	})

	// 5. Run the testbench. The breakpoint fires only when its enable
	//    condition (inside the when) AND the user condition hold.
	s.Reset("Counter.reset", 2)
	s.Poke("Counter.en", 1)
	s.Run(10)

	final, _ := s.Peek("Counter.count")
	fmt.Printf("\nfinal count = %d after %d cycles, %d debugger stops\n",
		final.Bits, s.Time(), stops)
}
