package repro_test

import (
	"encoding/json"
	"os"
	"testing"
)

// fig5Reference is the checked-in cost baseline TestFig5FusedRef gates
// against (testdata/fig5_fused_ref.json). Only ns/edge and allocs are
// gated; the rest documents where the number came from.
type fig5Reference struct {
	Comment   string  `json:"comment"`
	Conds     int     `json:"conds"`
	NsPerEdge float64 `json:"ns_per_edge"`
	MaxAllocs int64   `json:"max_allocs"`
}

// TestFig5FusedRef is the CI cost gate on the two-state fast path: it
// re-measures BenchmarkFig5Fused/fused (128 armed conditional
// breakpoints, every dependency dirty every edge) and fails when the
// per-edge cost exceeds 2x the checked-in reference or the steady
// state allocates — the regression modes a change to the shared value
// plane would show first, since four-state values ride the same
// pipeline and must only pay when bits are actually unknown or wide.
//
// Opt-in via HGDB_FIG5_REF (the reference JSON path) so ordinary
// `go test ./...` runs stay timing-independent; CI sets it.
func TestFig5FusedRef(t *testing.T) {
	refPath := os.Getenv("HGDB_FIG5_REF")
	if refPath == "" {
		t.Skip("set HGDB_FIG5_REF=testdata/fig5_fused_ref.json to enable the cost gate")
	}
	raw, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	var ref fig5Reference
	if err := json.Unmarshal(raw, &ref); err != nil {
		t.Fatalf("reference: %v", err)
	}
	if ref.NsPerEdge <= 0 {
		t.Fatalf("reference ns_per_edge must be positive, got %v", ref.NsPerEdge)
	}
	res := testing.Benchmark(func(b *testing.B) {
		s, rt := buildFig5FusedBench(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Poke("Top.x", uint64(i%255)+1)
			s.Step()
		}
		b.StopTimer()
		// The fused program is compiled lazily on the first armed edge;
		// verify after the run that the schedule still matches what the
		// reference measured.
		if stats, ok := rt.FuseInfo(); !ok || stats.Conds != ref.Conds {
			b.Fatalf("fused schedule has %d conditions (fused=%v), reference measured %d — "+
				"the workload changed, re-measure the reference", stats.Conds, ok, ref.Conds)
		}
	})
	got := float64(res.NsPerOp())
	limit := 2 * ref.NsPerEdge
	if got > limit {
		t.Fatalf("fused per-edge cost %.0f ns exceeds 2x reference (%.0f ns): fast-path regression",
			got, ref.NsPerEdge)
	}
	if allocs := res.AllocsPerOp(); allocs > ref.MaxAllocs {
		t.Fatalf("fused steady state allocates (%d allocs/edge, reference allows %d): "+
			"two-state values are leaving the inline planes", allocs, ref.MaxAllocs)
	}
	t.Logf("ref gate: %.0f ns/edge within 2x of reference %.0f ns, %d allocs/edge (N=%d)",
		got, ref.NsPerEdge, res.AllocsPerOp(), res.N)
}
