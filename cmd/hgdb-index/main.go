// Command hgdb-index converts a VCD trace into a pre-indexed store
// file: the time-blocked change index vcd.ParseStore builds in memory,
// persisted in the versioned on-disk format so hgdb-replay (and the
// future debug hub's shared replay fleet) opens it in O(header) with
// no text scan — blocks stream from disk on demand.
//
// Usage:
//
//	hgdb-index -vcd trace.vcd [-out trace.hgdbstore] [-block N]
//
// Indexing is a single streaming pass: blocks are checksummed and
// written to disk in parallel with the text scan, so peak memory stays
// at the sparse per-signal index, not the whole store.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/vcd"
)

func main() {
	vcdPath := flag.String("vcd", "", "VCD trace to index (required)")
	out := flag.String("out", "", "store file to write (default: <vcd>.hgdbstore)")
	block := flag.Uint64("block", vcd.DefaultBlockSize, "time-block size (trace timestamp units)")
	flag.Parse()
	if *vcdPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	outPath := *out
	if outPath == "" {
		outPath = *vcdPath + ".hgdbstore"
	}
	start := time.Now()
	stats, err := vcd.IndexFile(*vcdPath, outPath, vcd.StoreOptions{BlockSize: *block})
	if err != nil {
		log.Fatalf("hgdb-index: %v", err)
	}
	log.Printf("indexed %s -> %s in %s", *vcdPath, outPath, time.Since(start).Round(time.Millisecond))
	log.Printf("  %d cycles, %d signals, %d changes in %d blocks, %s store",
		stats.MaxTime, stats.Signals, stats.Changes, stats.Blocks, fmtBytes(int(stats.Bytes)))
	if stats.Parse.MaxWidth > 0 {
		log.Printf("  widest change literal: %d bits", stats.Parse.MaxWidth)
	}
	if stats.Parse.XZChanges > 0 {
		log.Printf("  %d changes carry x/z bits (four-state records)", stats.Parse.XZChanges)
	}
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
