// Command hgdb-sim simulates one of the packaged designs with the hgdb
// runtime attached and the debugging protocol served, playing the role
// of "commercial simulator with the hgdb shared object loaded" from the
// paper's Figure 1.
//
// Usage:
//
//	hgdb-sim -design counter|fpu|rocket [-debug] [-listen :9876]
//	         [-cycles N] [-vcd trace.vcd] [-symtab out.json] [-wait]
//
// -design rocket runs the vvadd workload on the generated RV32IM core.
// -wait holds the simulation until a debugger attaches and resumes it
// (set a breakpoint first, then `c`).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fpu"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/riscv"
	"repro/internal/rtl"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

func main() {
	design := flag.String("design", "counter", "design to simulate: counter | fpu | rocket")
	debug := flag.Bool("debug", false, "compile in debug (unoptimized) mode")
	listen := flag.String("listen", "127.0.0.1:9876", "debug protocol listen address")
	cycles := flag.Int("cycles", 2000, "cycles to simulate")
	vcdPath := flag.String("vcd", "", "write a VCD trace to this file")
	symtabPath := flag.String("symtab", "", "write the symbol table (JSON) to this file")
	wait := flag.Bool("wait", false, "wait for a debugger before running")
	flag.Parse()

	circ, drive, err := buildDesign(*design)
	if err != nil {
		log.Fatalf("hgdb-sim: %v", err)
	}
	comp, err := passes.Compile(circ, *debug)
	if err != nil {
		log.Fatalf("hgdb-sim: compile: %v", err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		log.Fatalf("hgdb-sim: symtab: %v", err)
	}
	if *symtabPath != "" {
		f, err := os.Create(*symtabPath)
		if err != nil {
			log.Fatalf("hgdb-sim: %v", err)
		}
		if err := table.Save(f); err != nil {
			log.Fatalf("hgdb-sim: %v", err)
		}
		f.Close()
		log.Printf("symbol table written to %s (%s)", *symtabPath, table.Stats())
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		log.Fatalf("hgdb-sim: elaborate: %v", err)
	}
	s := sim.New(nl)

	var rec *vcd.Recorder
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			log.Fatalf("hgdb-sim: %v", err)
		}
		defer f.Close()
		rec = vcd.NewRecorder(s, f)
	}

	rt, err := core.New(vpi.NewSimBackend(s), table)
	if err != nil {
		log.Fatalf("hgdb-sim: runtime: %v", err)
	}
	srv := server.New(rt, log.Default())
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("hgdb-sim: %v", err)
	}
	log.Printf("hgdb listening on %s (design %s, %s build, %s)",
		addr, *design, table.Mode(), nl.Stats())

	if *wait {
		log.Printf("waiting 30s for a debugger to attach...")
		time.Sleep(30 * time.Second)
	}
	start := time.Now()
	drive(s, *cycles)
	elapsed := time.Since(start)
	evals, stops := rt.Stats()
	skipped, evaluated, partial := rt.ActivityStats()
	log.Printf("simulated %d cycles in %s (%d bp evaluations, %d stops)",
		s.Time(), elapsed.Round(time.Millisecond), evals, stops)
	log.Printf("activity scheduling: %d groups skipped clean, %d evaluated, %d delta-bounded refreshes",
		skipped, evaluated, partial)
	if rec != nil {
		if err := rec.Flush(); err != nil {
			log.Fatalf("hgdb-sim: vcd: %v", err)
		}
		log.Printf("trace written to %s", *vcdPath)
	}
	srv.Close()
}

// buildDesign returns the High-form circuit and a testbench driver.
func buildDesign(name string) (*ir.Circuit, func(*sim.Simulator, int), error) {
	switch name {
	case "counter":
		c := generator.NewCircuit("Counter")
		m := c.NewModule("Counter")
		en := m.Input("en", ir.UIntType(1))
		out := m.Output("out", ir.UIntType(8))
		count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
		m.When(en, func() {
			count.Set(count.AddMod(m.Lit(1, 8)))
		})
		out.Set(count)
		circ, err := c.Build()
		return circ, func(s *sim.Simulator, cycles int) {
			s.Reset("Counter.reset", 2)
			s.Poke("Counter.en", 1)
			s.Run(cycles)
		}, err
	case "fpu":
		circ, err := fpu.BuildCircuit(true) // the seeded §4.2 bug
		return circ, func(s *sim.Simulator, cycles int) {
			vectors := []struct{ op, a, b uint64 }{
				{fpu.RmFLT, fpu.One, fpu.Two},
				{fpu.RmFEQ, fpu.One, fpu.One},
				{fpu.RmFEQ, fpu.QNaN, fpu.One}, // triggers the bug
				{fpu.RmFLE, fpu.NegOne, fpu.One},
			}
			s.Reset("FPToInt.reset", 2)
			for i := 0; i < cycles; i++ {
				v := vectors[i%len(vectors)]
				s.Poke("FPToInt.io_rm", v.op)
				s.Poke("FPToInt.io_in1", v.a)
				s.Poke("FPToInt.io_in2", v.b)
				s.Poke("FPToInt.io_wflags", 1)
				s.Step()
			}
		}, err
	case "rocket":
		circ, err := riscv.BuildSoC(1, "RV32Core", "SoC")
		return circ, func(s *sim.Simulator, cycles int) {
			w := pickWorkload("vvadd")
			for i, word := range w.Prog.Text {
				s.WriteMem("SoC.core0.imem", uint64(i), uint64(word))
			}
			for i, word := range w.Prog.Data {
				s.WriteMem("SoC.core0.dmem", uint64(i), uint64(word))
			}
			s.Reset("SoC.reset", 2)
			for i := 0; i < cycles; i++ {
				s.Step()
				if v, err := s.Peek("SoC.all_halted"); err == nil && v.IsTrue() {
					break
				}
			}
		}, err
	}
	return nil, nil, fmt.Errorf("unknown design %q (want counter, fpu, or rocket)", name)
}

func pickWorkload(name string) *riscv.Workload {
	for _, w := range riscv.Workloads() {
		if w.Name == name {
			return w
		}
	}
	panic("workload not found: " + name)
}
