// Command hgdb-hub serves a debug hub: a runtime registry that hosts a
// farm of simulations and replay sessions behind one WebSocket
// endpoint. Debugger clients route to a runtime with ?runtime=<id> on
// the upgrade URL (hgdb -runtime, hgdb-dap -hub, client.Options), and
// a plain connection is a control session that lists, launches, and
// evicts runtimes (the "runtimes" request family).
//
// Usage:
//
//	hgdb-hub [-listen :9900] [-symtab-budget 64MiB]
//	         [-launch name=c0,kind=sim,design=counter] ...
//
// Each -launch flag (repeatable) registers one runtime at startup;
// its value is a comma-separated spec: name=, kind= (sim|replay),
// design= (sim: counter|fpu), debug= (sim: seed a design bug),
// vcd= and symtab= (replay: trace and symbol-table files). Replay
// runtimes loading byte-identical symbol tables share one in-memory
// copy through the hub's content-keyed cache.
//
// The hub drains on SIGINT/SIGTERM: every runtime is evicted (its
// sessions get goodbye events) before the process exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/hub"
	"repro/internal/proto"
)

// launchSpecs collects repeated -launch flags.
type launchSpecs []proto.RuntimeSpec

func (l *launchSpecs) String() string { return fmt.Sprintf("%d spec(s)", len(*l)) }

func (l *launchSpecs) Set(s string) error {
	var spec proto.RuntimeSpec
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad spec entry %q (want key=value)", kv)
		}
		switch key {
		case "name":
			spec.Name = val
		case "kind":
			spec.Kind = val
		case "design":
			spec.Design = val
		case "debug":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return fmt.Errorf("bad debug value %q", val)
			}
			spec.Debug = b
		case "vcd":
			spec.VCD = val
		case "symtab":
			spec.Symtab = val
		default:
			return fmt.Errorf("unknown spec key %q", key)
		}
	}
	if spec.Kind == "" {
		spec.Kind = "sim"
	}
	*l = append(*l, spec)
	return nil
}

func main() {
	listen := flag.String("listen", ":9900", "hub endpoint (host:port)")
	budget := flag.Int("symtab-budget", 0, "idle byte budget of the shared symbol-table cache (0 = default 64MiB)")
	var specs launchSpecs
	flag.Var(&specs, "launch", "runtime spec to launch at startup (repeatable): name=,kind=,design=,debug=,vcd=,symtab=")
	flag.Parse()

	logger := log.New(os.Stderr, "hgdb-hub: ", log.LstdFlags)
	h := hub.New(hub.Options{SymtabBudget: *budget, Log: logger})
	addr, err := h.Listen(*listen)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("serving debug hub on %s", addr)

	for _, spec := range specs {
		info, err := h.Launch(spec)
		if err != nil {
			logger.Fatalf("launch %+v: %v", spec, err)
		}
		logger.Printf("launched %s (%s, %s)", info.ID, info.Kind, info.Top)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Printf("draining %d runtime(s)", len(h.List()))
	h.Close()
}
