// Command hgdb is the gdb-inspired interactive debugger client (§3.5).
// It attaches to an hgdb runtime (started by hgdb-sim or hgdb-replay,
// or embedded in any testbench via internal/server) over the WebSocket
// debugging protocol.
//
// Usage:
//
//	hgdb [-runtime <id>] <host:port>     interactive session
//	hgdb runtimes <host:port>            list a hub's runtime registry
//	hgdb launch <host:port> [-name n] [-kind sim|replay] [-design d]
//	            [-debug] [-vcd f] [-symtab f]
//	hgdb evict <host:port> <id>          drain and remove a hub runtime
//
// Against a debug hub (hgdb-hub), -runtime routes the interactive
// session to one registry runtime; the runtimes/launch/evict
// subcommands drive the registry itself over a control session.
//
// Commands:
//
//	b <file>:<line> [if <cond>]   set breakpoint (expands per instance)
//	delete <file>[:<line>]        remove breakpoints
//	info breakpoints|files|instances|status|lines <file>
//	c                             continue
//	s                             step (next enabled statement)
//	rs                            reverse step
//	p <expr> [@<instance>]        evaluate expression
//	get <path> / set <path> <v>   raw signal access
//	pause                         break at next statement
//	detach                        detach runtime, design runs free
//	sessions                      list attached debugger sessions
//	release                       hand control to the oldest observer
//	claim                         take control when it is vacant
//	q                             quit
//
// Any number of hgdb instances may attach to the same runtime. The
// first to attach holds control (may resume the simulation and set
// values); the rest observe — they receive every stop broadcast and
// may inspect state, even while the simulation is running.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/proto"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hgdb [-runtime <id>] <host:port>
       hgdb runtimes <host:port>
       hgdb launch <host:port> [-name n] [-kind sim|replay] [-design d] [-debug] [-vcd f] [-symtab f]
       hgdb evict <host:port> <id>`)
	os.Exit(2)
}

func main() {
	args := os.Args[1:]
	if len(args) >= 1 {
		switch args[0] {
		case "runtimes", "launch", "evict":
			hubCommand(args[0], args[1:])
			return
		}
	}
	fs := flag.NewFlagSet("hgdb", flag.ExitOnError)
	runtimeID := fs.String("runtime", "", "hub registry runtime id to attach to")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	cl, err := client.DialOpts(fs.Arg(0), client.Options{Runtime: *runtimeID})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hgdb: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()

	// Print events as they arrive.
	go func() {
		for ev := range cl.Events {
			if ev.Type == "disconnect" {
				fmt.Println("\nconnection closed")
				os.Exit(0)
			}
			printEvent(ev)
			fmt.Print("(hgdb) ")
		}
	}()

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("(hgdb) ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := execute(cl, line); quit {
				return
			}
		}
		fmt.Print("(hgdb) ")
	}
}

// hubCommand drives a hub's runtime registry over a control session.
func hubCommand(cmd string, args []string) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "hgdb %s: %v\n", cmd, err)
		os.Exit(1)
	}
	dial := func(addr string) *client.HubClient {
		hc, err := client.DialHub(addr)
		if err != nil {
			fail(err)
		}
		return hc
	}
	switch cmd {
	case "runtimes":
		if len(args) != 1 {
			usage()
		}
		hc := dial(args[0])
		defer hc.Close()
		infos, err := hc.Runtimes()
		if err != nil {
			fail(err)
		}
		if len(infos) == 0 {
			fmt.Println("no runtimes registered")
			return
		}
		fmt.Printf("%-10s %-7s %-9s %-12s %-7s %-9s %-7s %s\n",
			"ID", "KIND", "STATE", "TOP", "MODE", "SESSIONS", "UPTIME", "SOURCE")
		for _, info := range infos {
			shared := ""
			if info.SymtabShared {
				shared = " (shared symtab)"
			}
			fmt.Printf("%-10s %-7s %-9s %-12s %-7s %-9d %-7s %s%s\n",
				info.ID, info.Kind, info.State, info.Top, info.Mode,
				info.Sessions, fmt.Sprintf("%.0fs", info.UptimeSec), info.Source, shared)
		}
	case "launch":
		fs := flag.NewFlagSet("hgdb launch", flag.ExitOnError)
		name := fs.String("name", "", "runtime id (empty = assigned by the hub)")
		kind := fs.String("kind", "sim", "runtime kind: sim or replay")
		design := fs.String("design", "", "sim design (counter, fpu)")
		debug := fs.Bool("debug", false, "seed the design's debug bug (sim)")
		vcdPath := fs.String("vcd", "", "trace file (replay)")
		symtabPath := fs.String("symtab", "", "symbol-table file (replay)")
		if len(args) < 1 {
			usage()
		}
		fs.Parse(args[1:])
		hc := dial(args[0])
		defer hc.Close()
		info, err := hc.Launch(proto.RuntimeSpec{
			Name: *name, Kind: *kind, Design: *design,
			Debug: *debug, VCD: *vcdPath, Symtab: *symtabPath,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("launched %s: %s %s (%s)\n", info.ID, info.Kind, info.Top, info.State)
	case "evict":
		if len(args) != 2 {
			usage()
		}
		hc := dial(args[0])
		defer hc.Close()
		if err := hc.Evict(args[1]); err != nil {
			fail(err)
		}
		fmt.Printf("evicted %s\n", args[1])
	}
}

func printEvent(ev *proto.Event) {
	switch ev.Type {
	case "welcome":
		fmt.Printf("\nattached: design %s (%s build, %d source files) as session %d [%s], %d session(s) connected\n",
			ev.Top, ev.Mode, ev.Files, ev.SessionID, ev.Role, ev.Peers)
	case "stop":
		printStop(ev.Stop)
	case "attach":
		fmt.Printf("\nsession %d attached as %s (%d connected)\n", ev.SessionID, ev.Role, ev.Peers)
	case "goodbye":
		if ev.Reason == "shutdown" {
			fmt.Println("\nserver is shutting down")
			return
		}
		fmt.Printf("\nsession %d detached (%d left)\n", ev.SessionID, ev.Peers)
	case "control":
		fmt.Printf("\ncontrol moved to session %d (%s)\n", ev.Controller, ev.Reason)
	}
}

func printStop(stop *core.StopEvent) {
	kind := "breakpoint"
	if stop.StepStop {
		kind = "step"
	}
	dir := ""
	if stop.Reverse {
		dir = " (reverse)"
	}
	if len(stop.Watch) > 0 {
		fmt.Printf("\nwatchpoint hit [time %d]\n", stop.Time)
		for _, wh := range stop.Watch {
			if wh.OldDisplay != "" || wh.NewDisplay != "" {
				// Four-state / wide values travel as rendered literals.
				fmt.Printf("  #%d %s @%s: %s -> %s\n", wh.ID, wh.Expr, wh.Instance, wh.OldDisplay, wh.NewDisplay)
				continue
			}
			fmt.Printf("  #%d %s @%s: %d -> %d\n", wh.ID, wh.Expr, wh.Instance, wh.Old, wh.New)
		}
		return
	}
	fmt.Printf("\n%s hit%s at %s:%d  [time %d]\n", kind, dir, stop.File, stop.Line, stop.Time)
	for i, th := range stop.Threads {
		fmt.Printf("  thread %d: %s\n", i+1, th.Instance)
		printVars("locals", th.Locals)
		if i == 0 { // generator variables only for the focused thread
			printVars("generator", th.Generator)
		}
	}
}

func printVars(label string, vars []core.Variable) {
	if len(vars) == 0 {
		return
	}
	fmt.Printf("    %s:\n", label)
	for _, sv := range core.Structure(vars) {
		printStructured(sv, "      ")
	}
}

func printStructured(sv core.StructuredVar, indent string) {
	if sv.Leaf != nil && len(sv.Children) == 0 {
		if sv.Leaf.Unknown {
			// The runtime could not read the signal this stop (replay
			// gap / optimized-away net); keep the slot visible.
			fmt.Printf("%s%s = <unknown>\n", indent, sv.Name)
			return
		}
		if sv.Leaf.HasX() || len(sv.Leaf.Hi) > 0 {
			// Four-state or >64-bit: the Verilog literal is the value.
			fmt.Printf("%s%s = %s (%d bits)\n", indent, sv.Name, sv.Leaf.Display(), sv.Leaf.Width)
			return
		}
		fmt.Printf("%s%s = %d (0x%x, %d bits)\n", indent, sv.Name, sv.Leaf.Value, sv.Leaf.Value, sv.Leaf.Width)
		return
	}
	fmt.Printf("%s%s:\n", indent, sv.Name)
	for _, c := range sv.Children {
		printStructured(c, indent+"  ")
	}
}

// execute runs one command line; returns true to quit.
func execute(cl *client.Client, line string) bool {
	fields := strings.Fields(line)
	cmd := fields[0]
	args := fields[1:]
	switch cmd {
	case "q", "quit", "exit":
		return true
	case "b", "break":
		doBreak(cl, args)
	case "delete", "d":
		doDelete(cl, args)
	case "info":
		doInfo(cl, args)
	case "c", "continue":
		report(cl.Command("continue"))
	case "s", "step":
		report(cl.Command("step"))
	case "rs", "reverse-step":
		report(cl.Command("reverse-step"))
	case "pause":
		report(cl.Command("pause"))
	case "detach":
		report(cl.Command("detach"))
	case "p", "print":
		doPrint(cl, args)
	case "watch", "w":
		doWatch(cl, args)
	case "sessions":
		doSessions(cl)
	case "release":
		report(cl.Release())
	case "claim":
		report(cl.Claim())
	case "get":
		if len(args) != 1 {
			fmt.Println("usage: get <path>")
			return false
		}
		v, err := cl.GetValue(args[0])
		if err != nil {
			fmt.Println(err)
			return false
		}
		if v.Display != "" {
			fmt.Printf("%s = %s (%d bits)\n", args[0], v.Display, v.Width)
		} else {
			fmt.Printf("%s = %d (0x%x, %d bits)\n", args[0], v.Value, v.Value, v.Width)
		}
	case "set":
		if len(args) != 2 {
			fmt.Println("usage: set <path> <value>")
			return false
		}
		v, err := strconv.ParseUint(args[1], 0, 64)
		if err != nil {
			fmt.Println(err)
			return false
		}
		report(cl.SetValue(args[0], v))
	case "help", "h":
		fmt.Println("commands: b <file>:<line> [if cond] | watch <expr> [@inst] | delete | info | c | s | rs | p <expr> [@inst] | get | set | pause | detach | sessions | release | claim | q")
	default:
		fmt.Printf("unknown command %q (try help)\n", cmd)
	}
	return false
}

func report(err error) {
	if err != nil {
		fmt.Println(err)
	}
}

func parseLocation(s string) (string, int, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return s, 0, nil
	}
	line, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("bad location %q", s)
	}
	return s[:i], line, nil
}

func doBreak(cl *client.Client, args []string) {
	if len(args) == 0 {
		fmt.Println("usage: b <file>:<line> [if <cond>]")
		return
	}
	file, line, err := parseLocation(args[0])
	if err != nil {
		fmt.Println(err)
		return
	}
	cond := ""
	if len(args) >= 3 && args[1] == "if" {
		cond = strings.Join(args[2:], " ")
	}
	ids, err := cl.AddBreakpoint(file, line, cond)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("breakpoint set: %d emulated breakpoint(s) at %s:%d\n", len(ids), file, line)
}

func doDelete(cl *client.Client, args []string) {
	if len(args) == 0 {
		report(cl.ClearBreakpoints())
		fmt.Println("all breakpoints removed")
		return
	}
	file, line, err := parseLocation(args[0])
	if err != nil {
		fmt.Println(err)
		return
	}
	n, err := cl.RemoveBreakpoint(file, line)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("removed %d breakpoint(s)\n", n)
}

func doInfo(cl *client.Client, args []string) {
	if len(args) == 0 {
		fmt.Println("usage: info breakpoints|files|instances|status|lines <file>")
		return
	}
	switch args[0] {
	case "breakpoints", "b":
		infos, err := cl.ListBreakpoints()
		if err != nil {
			fmt.Println(err)
			return
		}
		if len(infos) == 0 {
			fmt.Println("no breakpoints")
			return
		}
		for _, bp := range infos {
			cond := ""
			if bp.EnableSrc != "" {
				cond = "  when " + bp.EnableSrc
			}
			fmt.Printf("  #%d %s:%d  %s%s\n", bp.ID, bp.Filename, bp.Line, bp.Instance, cond)
		}
	case "files", "instances", "status":
		raw, err := cl.Info(args[0], "")
		if err != nil {
			fmt.Println(err)
			return
		}
		printJSON(raw)
	case "lines":
		if len(args) != 2 {
			fmt.Println("usage: info lines <file>")
			return
		}
		raw, err := cl.Info("lines", args[1])
		if err != nil {
			fmt.Println(err)
			return
		}
		printJSON(raw)
	default:
		fmt.Printf("unknown info topic %q\n", args[0])
	}
}

func printJSON(raw json.RawMessage) {
	var pretty any
	if err := json.Unmarshal(raw, &pretty); err != nil {
		fmt.Println(string(raw))
		return
	}
	out, _ := json.MarshalIndent(pretty, "  ", "  ")
	fmt.Println("  " + string(out))
}

func doSessions(cl *client.Client) {
	infos, err := cl.Sessions()
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, si := range infos {
		self := ""
		if si.ID == cl.SessionID() {
			self = "  (you)"
		}
		drops := ""
		if si.Dropped > 0 {
			drops = fmt.Sprintf("  %d events dropped", si.Dropped)
		}
		fmt.Printf("  session %d  %s%s%s\n", si.ID, si.Role, drops, self)
	}
}

func doWatch(cl *client.Client, args []string) {
	if len(args) == 0 {
		fmt.Println("usage: watch <expr> [@<instance>] | watch -d <id>")
		return
	}
	if args[0] == "-d" && len(args) == 2 {
		id, err := strconv.Atoi(args[1])
		if err != nil {
			fmt.Println(err)
			return
		}
		report(cl.RemoveWatch(id))
		return
	}
	instance := ""
	exprParts := args
	if last := args[len(args)-1]; strings.HasPrefix(last, "@") {
		instance = last[1:]
		exprParts = args[:len(args)-1]
	}
	id, err := cl.AddWatch(instance, strings.Join(exprParts, " "))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("watchpoint %d set\n", id)
}

func doPrint(cl *client.Client, args []string) {
	if len(args) == 0 {
		fmt.Println("usage: p <expr> [@<instance>]")
		return
	}
	instance := ""
	exprParts := args
	if last := args[len(args)-1]; strings.HasPrefix(last, "@") {
		instance = last[1:]
		exprParts = args[:len(args)-1]
	}
	v, err := cl.Evaluate(instance, strings.Join(exprParts, " "))
	if err != nil {
		fmt.Println(err)
		return
	}
	if v.Display != "" {
		fmt.Printf("= %s (%d bits)\n", v.Display, v.Width)
		return
	}
	fmt.Printf("= %d (0x%x, %d bits)\n", v.Value, v.Value, v.Width)
}
