// Command hgdb-load is the broadcast fan-out load harness: it spins up
// a live counter simulation with the hgdb server attached, steps it
// through a breakpoint storm with one controller, and fans the stop
// broadcast out to N concurrent ws observers (plus optional DAP
// adapter sessions). It reports p50/p99 stop-event latency, per-edge
// simulator slowdown, coalesce/drop counts, the delta/full encoding
// split, and bytes on the wire.
//
// Usage:
//
//	hgdb-load [-observers 1000] [-dap 0] [-duration 5s | -cycles N]
//	          [-binary] [-delta] [-per-session-encode]
//	          [-json] [-ref testdata/broadcast_ref.json] [-v]
//	hgdb-load -runtimes 8 [-observers 50] [-duration 5s]
//
// With -ref the measured p99 stop latency is gated against the
// checked-in reference: exceeding it by more than 2x exits nonzero,
// which is how CI catches fan-out latency regressions.
//
// With -runtimes N the harness switches to hub-farm mode: an
// in-process debug hub hosts N runtimes (alternating live sims and
// replay sessions sharing one trace fixture), each stormed by its own
// controller with -observers sessions attached, and the report breaks
// p50/p99 stop latency out per runtime plus the shared symbol-table
// cache's hit accounting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
)

// reference is the checked-in regression baseline hgdb-load gates
// against (-ref). Only p99 is gated; the rest documents the
// environment the numbers came from.
type reference struct {
	Comment      string  `json:"comment,omitempty"`
	Observers    int     `json:"observers"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
}

func main() {
	runtimes := flag.Int("runtimes", 0, "hub-farm mode: host this many runtimes on an in-process hub")
	observers := flag.Int("observers", 1000, "concurrent ws observer sessions")
	dapClients := flag.Int("dap", 0, "concurrent DAP adapter sessions")
	duration := flag.Duration("duration", 5*time.Second, "storm duration (wall clock)")
	cycles := flag.Uint64("cycles", 0, "storm length in stops (overrides -duration)")
	binary := flag.Bool("binary", false, "observers negotiate binary frames")
	delta := flag.Bool("delta", false, "observers negotiate delta stop frames")
	perSession := flag.Bool("per-session-encode", false, "baseline: re-encode per session, no shared frames")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	refPath := flag.String("ref", "", "reference JSON; fail if p99 latency regresses past 2x")
	verbose := flag.Bool("v", false, "log progress")
	flag.Parse()

	if *runtimes > 0 {
		// The fan-out default of 1000 observers is per-runtime here and
		// would mean thousands of sessions; farm mode defaults lower
		// unless -observers was given explicitly.
		observersSet := false
		flag.Visit(func(f *flag.Flag) { observersSet = observersSet || f.Name == "observers" })
		if !observersSet {
			*observers = 50
		}
		opts := bench.HubFarmOptions{
			Runtimes:  *runtimes,
			Observers: *observers,
			Duration:  *duration,
			Binary:    *binary,
			Delta:     *delta,
		}
		if *verbose {
			opts.Logf = log.Printf
		}
		rep, err := bench.RunHubFarm(opts)
		if err != nil {
			log.Fatalf("hgdb-load: %v", err)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
			return
		}
		bench.PrintHubFarm(os.Stdout, rep)
		return
	}

	opts := bench.FanoutOptions{
		Observers:        *observers,
		DAPClients:       *dapClients,
		Duration:         *duration,
		Cycles:           *cycles,
		Binary:           *binary,
		Delta:            *delta,
		PerSessionEncode: *perSession,
	}
	if *cycles > 0 {
		opts.Duration = 0
	}
	if *verbose {
		opts.Logf = log.Printf
	}
	rep, err := bench.RunFanout(opts)
	if err != nil {
		log.Fatalf("hgdb-load: %v", err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	} else {
		bench.PrintFanout(os.Stdout, rep)
	}

	if *refPath != "" {
		raw, err := os.ReadFile(*refPath)
		if err != nil {
			log.Fatalf("hgdb-load: ref: %v", err)
		}
		var ref reference
		if err := json.Unmarshal(raw, &ref); err != nil {
			log.Fatalf("hgdb-load: ref: %v", err)
		}
		limit := 2 * ref.P99LatencyMS
		if rep.P99LatencyMS > limit {
			fmt.Fprintf(os.Stderr,
				"hgdb-load: p99 stop latency %.2f ms exceeds 2x reference (%.2f ms @ %d observers)\n",
				rep.P99LatencyMS, ref.P99LatencyMS, ref.Observers)
			os.Exit(1)
		}
		fmt.Printf("ref gate: p99 %.2f ms within 2x of reference %.2f ms\n",
			rep.P99LatencyMS, ref.P99LatencyMS)
	}
}
