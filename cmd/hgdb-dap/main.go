// Command hgdb-dap is the Debug Adapter Protocol front-end for hgdb:
// it attaches to a running hgdb debug server (hgdb-sim, hgdb-replay,
// or any testbench embedding internal/server) and speaks DAP on
// stdio or a TCP listener, so VS Code, nvim-dap, Theia and the
// JetBrains IDEs can debug hardware generator sources directly.
//
// Usage:
//
//	hgdb-dap -attach 127.0.0.1:9876            # DAP on stdio (editors)
//	hgdb-dap -attach 127.0.0.1:9876 -listen :4711
//	hgdb-dap -attach 127.0.0.1:9900 -hub       # endpoint is a debug hub
//
// In stdio mode (the layout editors launch), one DAP session maps to
// one hgdb debugger session; diagnostics go to stderr. In listen mode
// every accepted TCP connection gets its own adapter — and its own
// hgdb session, so several editors may inspect one simulation under
// the server's usual control arbitration.
//
// With -hub the address is a hgdb-hub registry endpoint: the DAP
// launch request registers a runtime there from its arguments (kind,
// design, vcd, symtab…) and attaches to it, while the DAP attach
// request selects an existing runtime by id ("runtime" argument).
//
// Reverse execution: when the attached server is backed by a replay
// trace, the adapter advertises supportsStepBack and maps DAP's
// stepBack/reverseContinue onto hgdb reverse-stepping.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/dap"
)

// stdio glues stdin/stdout into one ReadWriter for the adapter.
type stdio struct{}

func (stdio) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdio) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

func main() {
	attach := flag.String("attach", "127.0.0.1:9876", "hgdb debug server to attach to (host:port)")
	hub := flag.Bool("hub", false, "treat the attach address as a debug hub; launch/attach select registry runtimes")
	listen := flag.String("listen", "", "serve DAP on this TCP address instead of stdio")
	quiet := flag.Bool("quiet", false, "suppress diagnostics on stderr")
	flag.Parse()

	logger := log.New(os.Stderr, "hgdb-dap: ", log.LstdFlags)
	if *quiet {
		logger = nil
	}
	logf := func(format string, args ...any) {
		if logger != nil {
			logger.Printf(format, args...)
		}
	}

	if *listen == "" {
		ad, err := dap.New(stdio{}, dap.Options{Addr: *attach, Hub: *hub, Logger: logger})
		if err != nil {
			log.Fatalf("hgdb-dap: %v", err)
		}
		if err := ad.Serve(); err != nil {
			log.Fatalf("hgdb-dap: %v", err)
		}
		return
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("hgdb-dap: %v", err)
	}
	logf("serving DAP on %s, attaching sessions to %s", ln.Addr(), *attach)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// A transient accept failure (e.g. fd exhaustion) must not
			// tear down every live editor session.
			logf("accept: %v", err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		go func(conn net.Conn) {
			defer conn.Close()
			ad, err := dap.New(conn, dap.Options{Addr: *attach, Hub: *hub, Logger: logger})
			if err != nil {
				logf("session %s: %v", conn.RemoteAddr(), err)
				return
			}
			// Serve maps a clean peer close to nil; anything else is a
			// real protocol/transport failure worth logging.
			if err := ad.Serve(); err != nil {
				logf("session %s: %v", conn.RemoteAddr(), err)
			}
		}(conn)
	}
}
