// Command hgdb-replay serves the hgdb debugging protocol over a
// recorded VCD trace instead of a live simulation — the paper's replay
// tool (Figure 1), which unlocks full reverse debugging because the
// backend supports SetTime in both directions.
//
// Usage:
//
//	hgdb-replay -vcd trace.vcd -symtab table.json [-listen :9876]
//	            [-auto] [-block N] [-checkpoint N]
//
// With -auto the tool replays the trace forward to the end (pausing at
// breakpoint stops, like a live simulation would); otherwise it holds
// at time zero and the attached debugger steps through time.
//
// The trace is parsed in one streaming pass into a time-blocked change
// index (-block sets the window width); signal timelines decode only
// when the debugger's breakpoints need them, and backward time travel
// restores periodic value-snapshot checkpoints (-checkpoint sets their
// spacing, 0 = adaptive) instead of rescanning the trace.
//
// If -vcd points at a pre-indexed store file (written by hgdb-index or
// hgdb-replay -index), it is opened in O(header) with no text scan —
// blocks load lazily from disk, bounded by -block-cache. With -index
// the tool writes the store file next to the trace and exits.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/server"
	"repro/internal/symtab"
	"repro/internal/vcd"
)

func main() {
	vcdPath := flag.String("vcd", "", "VCD trace to replay (required)")
	symtabPath := flag.String("symtab", "", "symbol table JSON (required)")
	listen := flag.String("listen", "127.0.0.1:9876", "debug protocol listen address")
	auto := flag.Bool("auto", false, "replay forward automatically")
	holdFor := flag.Duration("hold", 60*time.Second, "how long to serve before exiting")
	block := flag.Uint64("block", vcd.DefaultBlockSize, "trace index time-block size (trace timestamp units)")
	checkpoint := flag.Uint64("checkpoint", 0, "reverse-execution checkpoint interval (trace timestamp units, 0 = adaptive)")
	index := flag.String("index", "", "write a pre-indexed store file for -vcd to this path and exit")
	blockCache := flag.Int("block-cache", vcd.DefaultBlockCacheBytes, "resident block byte bound for pre-indexed stores")
	flag.Parse()
	if *index != "" {
		if *vcdPath == "" {
			flag.Usage()
			os.Exit(2)
		}
		stats, err := vcd.IndexFile(*vcdPath, *index, vcd.StoreOptions{BlockSize: *block})
		if err != nil {
			log.Fatalf("hgdb-replay: index: %v", err)
		}
		log.Printf("indexed %s -> %s (%d cycles, %d signals, %d changes in %d blocks, %s)",
			*vcdPath, *index, stats.MaxTime, stats.Signals, stats.Changes,
			stats.Blocks, fmtBytes(int(stats.Bytes)))
		logFourState(stats.Parse)
		return
	}
	if *vcdPath == "" || *symtabPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// A pre-indexed store opens in O(header); anything else is raw VCD
	// text and takes the streaming parse path.
	store, err := vcd.OpenStoreFile(*vcdPath, vcd.OpenOptions{BlockCacheBytes: *blockCache})
	switch {
	case err == nil:
		log.Printf("opened pre-indexed store %s (no text scan)", *vcdPath)
	case errors.Is(err, vcd.ErrNotStore):
		vf, err := os.Open(*vcdPath)
		if err != nil {
			log.Fatalf("hgdb-replay: %v", err)
		}
		store, err = vcd.ParseStore(vf, vcd.StoreOptions{BlockSize: *block})
		vf.Close()
		if err != nil {
			log.Fatalf("hgdb-replay: parse vcd: %v", err)
		}
	default:
		log.Fatalf("hgdb-replay: open store: %v", err)
	}
	defer store.Close()
	sf, err := os.Open(*symtabPath)
	if err != nil {
		log.Fatalf("hgdb-replay: %v", err)
	}
	table, err := symtab.Load(sf)
	sf.Close()
	if err != nil {
		log.Fatalf("hgdb-replay: load symtab: %v", err)
	}

	eng := replay.NewStore(store, replay.WithCheckpointInterval(*checkpoint))
	rt, err := core.New(eng, table)
	if err != nil {
		log.Fatalf("hgdb-replay: runtime: %v", err)
	}
	srv := server.New(rt, log.Default())
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("hgdb-replay: %v", err)
	}
	log.Printf("replaying %s (%d cycles, %d signals, %d changes in %d blocks, %s index) on %s",
		*vcdPath, store.MaxTime, store.NumSignals(), store.NumChanges(),
		store.NumBlocks(), fmtBytes(store.IndexBytes()), addr)
	logFourState(store.Stats)

	if *auto {
		for eng.StepForward() {
		}
		log.Printf("replay finished at time %d", eng.Time())
	} else {
		log.Printf("holding for %s; attach with: hgdb %s", *holdFor, addr)
		deadline := time.Now().Add(*holdFor)
		for time.Now().Before(deadline) {
			// Drive the trace forward slowly so breakpoint evaluation
			// happens; a stopped debugger blocks inside StepForward.
			if !eng.StepForward() {
				eng.SetTime(0)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	srv.Close()
}

// logFourState reports the trace's four-state footprint: the widest
// change literal seen and how many changes carry x/z bits. Silent for
// plain two-state, ≤64-bit traces.
func logFourState(ps vcd.ParseStats) {
	if ps.MaxWidth > 0 {
		log.Printf("  widest change literal: %d bits", ps.MaxWidth)
	}
	if ps.XZChanges > 0 {
		log.Printf("  %d changes carry x/z bits (four-state records)", ps.XZChanges)
	}
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
